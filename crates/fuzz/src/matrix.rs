//! The behavior matrix: every case runs through 4 backends × 3 search
//! strategies × 2 thread counts, each both as a fresh synthesis per request
//! and through a long-lived [`UpdateEngine`] reused across the stream.
//!
//! The matrix also carries a **checkpoint axis**: fresh synthesis runs with
//! the prefix-checkpoint cache *disabled* (`checkpoint_budget(0)`) while the
//! engine runs with it enabled (and persisted across the stream), so the
//! engine-vs-fresh comparison below doubles as the cache-on/off
//! differential — any answer the cache changes is a matrix failure.
//!
//! Cross-checks, in order:
//!
//! 1. **engine vs fresh** — per cell and request, the reused engine (cache
//!    on) must return byte-identical commands/order (or the identical
//!    error) to the fresh cache-off synthesis;
//! 2. **verdict agreement** — all cells must agree per request on the
//!    normalized verdict (`NoOrderingExists` matches regardless of its
//!    `proven_by_constraints` flag, as in `tests/strategy_differential.rs`);
//! 3. **thread independence** — within one `(backend, strategy)` the
//!    committed sequence must not depend on the thread count;
//! 4. **trace oracle** — every distinct solved sequence is replayed prefix by
//!    prefix through `netupd_ltl::semantics` (no model checker involved);
//! 5. **probe simulator** — the sequence and its wait-minimized form are
//!    executed against the operational semantics with a probe stream; a
//!    solved update must not drop a probe.
//!
//! Sequences are *not* required to agree across backends or strategies — the
//! paper's search is free to commit any correct order — which is exactly why
//! checks 4 and 5 verify each distinct sequence independently.

use netupd_ltl::semantics;
use netupd_mc::Backend;
use netupd_model::{CommandSeq, Configuration, Network};
use netupd_synth::exec::{run_with_probes, ProbeExperiment};
use netupd_synth::wait_removal::remove_unnecessary_waits;
use netupd_synth::{
    Granularity, SearchStrategy, SynthesisError, SynthesisOptions, Synthesizer, UpdateEngine,
    UpdateProblem, UpdateSequence,
};

/// Thread counts exercised for every backend/strategy combination.
pub const THREAD_COUNTS: [usize; 2] = [1, 4];

/// One cell of the behavior matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Model-checking backend.
    pub backend: Backend,
    /// Search strategy.
    pub strategy: SearchStrategy,
    /// Worker threads for candidate verification.
    pub threads: usize,
}

impl Cell {
    /// Every cell, ordered so the two thread counts of one
    /// `(backend, strategy)` pair are adjacent.
    pub fn all() -> Vec<Cell> {
        let mut cells = Vec::new();
        for backend in Backend::ALL {
            for strategy in SearchStrategy::ALL {
                for threads in THREAD_COUNTS {
                    cells.push(Cell {
                        backend,
                        strategy,
                        threads,
                    });
                }
            }
        }
        cells
    }

    /// Display label, e.g. `incremental/sat-guided/t4`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/t{}",
            self.backend,
            self.strategy.name(),
            self.threads
        )
    }

    fn options(&self, granularity: Granularity) -> SynthesisOptions {
        SynthesisOptions::with_backend(self.backend)
            .granularity(granularity)
            .strategy(self.strategy)
            .threads(self.threads)
    }
}

/// A cross-implementation or oracle discrepancy found while checking one
/// request stream.
#[derive(Debug, Clone)]
pub struct MatrixFailure {
    /// Index of the offending request within the stream.
    pub request: usize,
    /// What disagreed, with the cells involved.
    pub detail: String,
}

/// Aggregate statistics of a clean matrix run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Requests for which every cell committed a sequence.
    pub solved: usize,
    /// Requests every cell reported as having no correct ordering.
    pub infeasible: usize,
    /// Requests rejected because an endpoint configuration violates the spec.
    pub endpoint_violations: usize,
    /// Distinct sequences verified against the trace oracle and the probe
    /// simulator.
    pub verified_sequences: usize,
}

impl StreamStats {
    /// Merges the statistics of another stream into this one.
    pub fn absorb(&mut self, other: StreamStats) {
        self.solved += other.solved;
        self.infeasible += other.infeasible;
        self.endpoint_violations += other.endpoint_violations;
        self.verified_sequences += other.verified_sequences;
    }
}

/// The normalized verdict all cells must agree on.
fn verdict(result: &Result<UpdateSequence, SynthesisError>) -> String {
    match result {
        Ok(_) => "solved".to_string(),
        Err(SynthesisError::NoOrderingExists { .. }) => "no-ordering-exists".to_string(),
        Err(other) => format!("{other:?}"),
    }
}

/// Replays `commands` prefix by prefix through the trace semantics; an error
/// describes the violated prefix.
fn oracle_check(problem: &UpdateProblem, commands: &CommandSeq) -> Result<(), String> {
    let check = |config: &Configuration, step: usize| -> Result<(), String> {
        let net = Network::new(problem.topology.clone(), config.clone());
        for class in &problem.classes {
            for host in &problem.ingress_hosts {
                let (sw, pt) = problem
                    .topology
                    .switch_of_host(*host)
                    .ok_or_else(|| format!("ingress host {host} is not attached"))?;
                for trace in net.traces_from(sw, pt, class) {
                    if !semantics::satisfies(&trace, &problem.spec) {
                        return Err(format!(
                            "intermediate configuration after {step} update(s) violates the \
                             spec on {trace}"
                        ));
                    }
                }
            }
        }
        Ok(())
    };
    let mut config = problem.initial.clone();
    check(&config, 0)?;
    for (applied, (sw, table)) in commands.updates().enumerate() {
        config.set_table(sw, table.clone());
        check(&config, applied + 1)?;
    }
    for sw in problem.final_config.switches() {
        if !config.table(sw).same_rules(&problem.final_config.table(sw)) {
            return Err(format!("switch {sw} did not reach its final table"));
        }
    }
    Ok(())
}

/// Executes `commands` under the operational semantics with a probe stream;
/// a correct update must not drop a probe.
fn probe_check(problem: &UpdateProblem, commands: &CommandSeq, what: &str) -> Result<(), String> {
    let mut experiment = ProbeExperiment::for_problem(problem);
    // The update completes within a few ticks per command; a short window
    // keeps 200-case debug runs fast while still covering the transition.
    experiment.duration = 200 + 20 * commands.len() as u64;
    let report = run_with_probes(problem, commands, &experiment)
        .map_err(|e| format!("{what}: probe simulation failed: {e}"))?;
    if report.total_dropped() > 0 {
        return Err(format!(
            "{what}: dropped {}/{} probes",
            report.total_dropped(),
            report.total_sent()
        ));
    }
    Ok(())
}

/// Runs one request stream through the full matrix and cross-checks every
/// implementation against the others and against the oracles.
pub fn check_stream(
    problems: &[UpdateProblem],
    granularity: Granularity,
) -> Result<StreamStats, MatrixFailure> {
    let cells = Cell::all();
    let fail = |request: usize, detail: String| MatrixFailure { request, detail };

    // Outcomes per cell per request, fresh synthesis; the engine axis is
    // compared inline.
    let mut outcomes: Vec<Vec<Result<UpdateSequence, SynthesisError>>> =
        Vec::with_capacity(cells.len());
    for cell in &cells {
        let options = cell.options(granularity);
        let mut fresh = Vec::with_capacity(problems.len());
        for problem in problems {
            // The checkpoint axis: fresh runs are cache-off, the engine
            // below is cache-on, and the two must agree byte for byte.
            fresh.push(
                Synthesizer::new(problem.clone())
                    .with_options(options.clone().checkpoint_budget(0))
                    .synthesize(),
            );
        }
        {
            let mut engine = UpdateEngine::for_problem(&problems[0], options);
            for (request, problem) in problems.iter().enumerate() {
                let reused = engine.solve(problem);
                let agreed = match (&fresh[request], &reused) {
                    (Ok(a), Ok(b)) => a.commands == b.commands && a.order == b.order,
                    (Err(a), Err(b)) => a == b,
                    _ => false,
                };
                if !agreed {
                    return Err(fail(
                        request,
                        format!(
                            "{}: engine reuse diverged from fresh synthesis \
                             (fresh: {}, reused: {})",
                            cell.label(),
                            verdict(&fresh[request]),
                            verdict(&reused)
                        ),
                    ));
                }
            }
        }
        outcomes.push(fresh);
    }

    let mut stats = StreamStats::default();
    for (request, problem) in problems.iter().enumerate() {
        // Verdict agreement across every cell.
        let reference = verdict(&outcomes[0][request]);
        for (c, cell) in cells.iter().enumerate().skip(1) {
            let v = verdict(&outcomes[c][request]);
            if v != reference {
                return Err(fail(
                    request,
                    format!(
                        "verdict mismatch: {} says {reference}, {} says {v}",
                        cells[0].label(),
                        cell.label()
                    ),
                ));
            }
        }
        match reference.as_str() {
            "solved" => stats.solved += 1,
            "no-ordering-exists" => stats.infeasible += 1,
            _ => stats.endpoint_violations += 1,
        }

        // Thread independence within each (backend, strategy): Cell::all()
        // keeps the two thread counts adjacent.
        for pair in (0..cells.len()).step_by(2) {
            let (a, b) = (&outcomes[pair][request], &outcomes[pair + 1][request]);
            let same = match (a, b) {
                (Ok(x), Ok(y)) => x.commands == y.commands && x.order == y.order,
                (Err(x), Err(y)) => x == y,
                _ => false,
            };
            if !same {
                return Err(fail(
                    request,
                    format!(
                        "thread count changed the result between {} and {}",
                        cells[pair].label(),
                        cells[pair + 1].label()
                    ),
                ));
            }
        }

        // Oracle and probe verification of every distinct committed sequence.
        let mut seen: Vec<(&CommandSeq, String)> = Vec::new();
        for (c, cell) in cells.iter().enumerate() {
            if let Ok(update) = &outcomes[c][request] {
                if seen.iter().any(|(cmds, _)| *cmds == &update.commands) {
                    continue;
                }
                seen.push((&update.commands, cell.label()));
                oracle_check(problem, &update.commands)
                    .map_err(|e| fail(request, format!("{}: {e}", cell.label())))?;
                probe_check(problem, &update.commands, "synthesized sequence")
                    .map_err(|e| fail(request, format!("{}: {e}", cell.label())))?;
                let minimized = remove_unnecessary_waits(problem, &update.order);
                probe_check(problem, &minimized, "wait-minimized sequence")
                    .map_err(|e| fail(request, format!("{}: {e}", cell.label())))?;
                stats.verified_sequences += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_matrix_has_twenty_four_cells_with_adjacent_thread_pairs() {
        let cells = Cell::all();
        assert_eq!(cells.len(), 24);
        for pair in cells.chunks(2) {
            assert_eq!(pair[0].backend, pair[1].backend);
            assert_eq!(pair[0].strategy, pair[1].strategy);
            assert_eq!(pair[0].threads, 1);
            assert_eq!(pair[1].threads, 4);
        }
        // Labels are unique.
        let labels: std::collections::BTreeSet<String> = cells.iter().map(Cell::label).collect();
        assert_eq!(labels.len(), 24);
    }
}
