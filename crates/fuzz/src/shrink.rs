//! Automatic minimization of failing cases and reproducer rendering.
//!
//! A discrepancy is shrunk in stages — stream, then topology, then
//! configuration delta, then specification — re-running the full matrix
//! check on every candidate and keeping it only while it still fails:
//!
//! 1. **stream** — truncate to the failing request (or the prefix ending at
//!    it, for engine-reuse divergences that need history);
//! 2. **topology** — rebuild the topology restricted to the switches and
//!    hosts the problem actually references (configured switches, spec
//!    atoms, ingress attachments, forwarding targets), densely remapping
//!    identifiers through configurations, classes, and the spec;
//! 3. **configuration delta** — per differing switch, try starting it at its
//!    final table (and vice versa), removing it from the update;
//! 4. **specification** — drop top-level conjuncts to a fixpoint.
//!
//! Every stage is semantics-aware but *validated empirically*: a candidate
//! is only adopted if [`check_stream`] still
//! reports a failure, so a transformation that accidentally changes behavior
//! can never mask the original bug.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;

use netupd_ltl::{Ltl, Prop};
use netupd_model::{
    Action, Configuration, Endpoint, Field, HostId, Pattern, Rule, SwitchId, Topology, TrafficClass,
};
use netupd_synth::{Granularity, UpdateProblem};

use crate::matrix::{check_stream, MatrixFailure};

/// Upper bound on matrix re-checks one minimization may spend.
const SHRINK_BUDGET: usize = 120;

/// Rebuilds `phi` with every atom passed through `f`.
fn map_props(phi: &Ltl, f: &dyn Fn(Prop) -> Prop) -> Ltl {
    match phi {
        Ltl::True => Ltl::True,
        Ltl::False => Ltl::False,
        Ltl::Prop(p) => Ltl::prop(f(*p)),
        Ltl::NotProp(p) => Ltl::not_prop(f(*p)),
        Ltl::And(a, b) => Ltl::and(map_props(a, f), map_props(b, f)),
        Ltl::Or(a, b) => Ltl::or(map_props(a, f), map_props(b, f)),
        Ltl::Next(a) => Ltl::next(map_props(a, f)),
        Ltl::Until(a, b) => Ltl::until(map_props(a, f), map_props(b, f)),
        Ltl::Release(a, b) => Ltl::release(map_props(a, f), map_props(b, f)),
    }
}

/// Flattens the top-level conjunction of `phi`.
fn conjuncts(phi: &Ltl) -> Vec<Ltl> {
    match phi {
        Ltl::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// The switches and hosts a problem stream actually references.
fn referenced(problems: &[UpdateProblem]) -> (BTreeSet<SwitchId>, BTreeSet<HostId>) {
    let topo = &problems[0].topology;
    let mut switches: BTreeSet<SwitchId> = BTreeSet::new();
    let mut hosts: BTreeSet<HostId> = BTreeSet::new();
    for problem in problems {
        for config in [&problem.initial, &problem.final_config] {
            switches.extend(config.switches());
        }
        for prop in problem.spec.propositions() {
            match prop {
                Prop::Switch(sw) => {
                    switches.insert(sw);
                }
                Prop::AtHost(h) => {
                    hosts.insert(h);
                }
                _ => {}
            }
        }
        hosts.extend(problem.ingress_hosts.iter().copied());
    }
    // Hosts named by destination-field constraints must survive with their
    // identity intact, so every Dst value stays consistently mapped.
    for problem in problems {
        for class in &problem.classes {
            if let Some(v) = class.field(Field::Dst) {
                if let Ok(id) = u32::try_from(v) {
                    if topo.hosts().contains(&HostId(id)) {
                        hosts.insert(HostId(id));
                    }
                }
            }
        }
    }
    // Forwarding closure: a rule's out-port may lead to a switch or host
    // that carries no table of its own but still appears in traces.
    let mut frontier: Vec<SwitchId> = switches.iter().copied().collect();
    while let Some(sw) = frontier.pop() {
        for problem in problems {
            for config in [&problem.initial, &problem.final_config] {
                let Some(table) = config.table_ref(sw) else {
                    continue;
                };
                for rule in table.iter() {
                    for action in rule.actions() {
                        let Action::Forward(port) = action else {
                            continue;
                        };
                        if let Some((_, link)) = topo.link_from_port(sw, *port) {
                            match link.dst {
                                Endpoint::SwitchPort(next, _) => {
                                    if switches.insert(next) {
                                        frontier.push(next);
                                    }
                                }
                                Endpoint::Host(h) => {
                                    hosts.insert(h);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (switches, hosts)
}

/// Returns `true` if any rule uses an action the remapper does not model.
fn has_unmappable_actions(problems: &[UpdateProblem]) -> bool {
    problems.iter().any(|p| {
        [&p.initial, &p.final_config].into_iter().any(|c| {
            c.iter().any(|(_, t)| {
                t.iter().any(|r| {
                    r.actions()
                        .iter()
                        .any(|a| matches!(a, Action::SetField(..)))
                })
            })
        })
    })
}

/// Restricts the stream's shared topology to the referenced switches and
/// hosts, densely remapping identifiers everywhere they occur. Returns
/// `None` when nothing would be removed or the stream uses features the
/// remapper does not model.
fn restrict_topology(problems: &[UpdateProblem]) -> Option<Vec<UpdateProblem>> {
    if problems.is_empty() || has_unmappable_actions(problems) {
        return None;
    }
    let topo = &problems[0].topology;
    let (keep_switches, keep_hosts) = referenced(problems);
    if keep_switches.len() == topo.num_switches() && keep_hosts.len() == topo.num_hosts() {
        return None;
    }
    if keep_switches.is_empty() {
        return None;
    }

    // Dense remaps, in original id order so the result is deterministic.
    let switch_map: BTreeMap<SwitchId, SwitchId> = keep_switches
        .iter()
        .enumerate()
        .map(|(i, sw)| (*sw, SwitchId(i as u32)))
        .collect();
    let host_map: BTreeMap<HostId, HostId> = keep_hosts
        .iter()
        .enumerate()
        .map(|(i, h)| (*h, HostId(i as u32)))
        .collect();

    let mut small = Topology::new();
    small.add_switches(switch_map.len());
    for _ in 0..host_map.len() {
        small.add_host();
    }
    for link in topo.links() {
        let src = remap_endpoint(link.src, &switch_map, &host_map);
        let dst = remap_endpoint(link.dst, &switch_map, &host_map);
        if let (Some(src), Some(dst)) = (src, dst) {
            small.add_link(src, dst);
        }
    }
    let shared = Arc::new(small);

    let map_value = |v: u64| -> u64 {
        u32::try_from(v)
            .ok()
            .and_then(|id| host_map.get(&HostId(id)))
            .map_or(v, |h| u64::from(h.0))
    };
    let map_prop = |p: Prop| -> Prop {
        match p {
            Prop::Switch(sw) => Prop::Switch(*switch_map.get(&sw).unwrap_or(&sw)),
            Prop::AtHost(h) => Prop::AtHost(*host_map.get(&h).unwrap_or(&h)),
            Prop::FieldIs(Field::Dst, v) => Prop::FieldIs(Field::Dst, map_value(v)),
            other => other,
        }
    };
    let map_config = |config: &Configuration| -> Option<Configuration> {
        let mut out = Configuration::new();
        for (sw, table) in config.iter() {
            let new_sw = switch_map.get(&sw)?;
            let rules: Vec<Rule> = table
                .iter()
                .map(|r| {
                    let mut pattern = Pattern::any();
                    if let Some(pt) = r.pattern().in_port() {
                        pattern = pattern.with_in_port(pt);
                    }
                    for (field, v) in r.pattern().fields() {
                        let v = if field == Field::Dst { map_value(v) } else { v };
                        pattern = pattern.with_field(field, v);
                    }
                    Rule::new(r.priority(), pattern, r.actions().to_vec())
                })
                .collect();
            out.set_table(*new_sw, netupd_model::Table::new(rules));
        }
        Some(out)
    };

    let mut out = Vec::with_capacity(problems.len());
    for problem in problems {
        let classes: Vec<TrafficClass> = problem
            .classes
            .iter()
            .map(|c| {
                let mut out = TrafficClass::new();
                for (field, v) in c.iter() {
                    let v = if field == Field::Dst { map_value(v) } else { v };
                    out = out.with_field(field, v);
                }
                out
            })
            .collect();
        let ingress: Vec<HostId> = problem
            .ingress_hosts
            .iter()
            .map(|h| host_map.get(h).copied())
            .collect::<Option<_>>()?;
        out.push(UpdateProblem::new(
            Arc::clone(&shared),
            map_config(&problem.initial)?,
            map_config(&problem.final_config)?,
            classes,
            ingress,
            map_props(&problem.spec, &map_prop),
        ));
    }
    Some(out)
}

fn remap_endpoint(
    e: Endpoint,
    switch_map: &BTreeMap<SwitchId, SwitchId>,
    host_map: &BTreeMap<HostId, HostId>,
) -> Option<Endpoint> {
    match e {
        Endpoint::SwitchPort(sw, pt) => switch_map.get(&sw).map(|s| Endpoint::port(*s, pt)),
        Endpoint::Host(h) => host_map.get(&h).map(|h| Endpoint::host(*h)),
    }
}

/// Minimizes a failing stream, re-checking every candidate; returns the
/// smallest still-failing stream found and its failure.
pub fn minimize(
    problems: Vec<UpdateProblem>,
    granularity: Granularity,
    failure: MatrixFailure,
) -> (Vec<UpdateProblem>, MatrixFailure) {
    let mut best = problems;
    let mut best_failure = failure;
    let mut checks = 0usize;
    let try_candidate = |candidate: Vec<UpdateProblem>,
                         best: &mut Vec<UpdateProblem>,
                         best_failure: &mut MatrixFailure,
                         checks: &mut usize|
     -> bool {
        if *checks >= SHRINK_BUDGET || candidate.is_empty() {
            return false;
        }
        *checks += 1;
        match check_stream(&candidate, granularity) {
            Err(f) => {
                *best = candidate;
                *best_failure = f;
                true
            }
            Ok(_) => false,
        }
    };

    // 1. Stream truncation: the failing request alone, else the prefix up to
    // it (engine-reuse divergences may need the history).
    if best.len() > 1 {
        let r = best_failure.request.min(best.len() - 1);
        let single = vec![best[r].clone()];
        if !try_candidate(single, &mut best, &mut best_failure, &mut checks) && r + 1 < best.len() {
            let prefix = best[..=r].to_vec();
            try_candidate(prefix, &mut best, &mut best_failure, &mut checks);
        }
    }

    // 2. Topology restriction.
    if let Some(candidate) = restrict_topology(&best) {
        try_candidate(candidate, &mut best, &mut best_failure, &mut checks);
    }

    // 3. Configuration-delta shrinking (single-request streams only: editing
    // one step of a chained stream would break the chaining invariant).
    if best.len() == 1 {
        let mut progress = true;
        while progress && checks < SHRINK_BUDGET {
            progress = false;
            let problem = &best[0];
            let differing = problem.initial.differing_switches(&problem.final_config);
            if differing.len() <= 1 {
                break;
            }
            for sw in differing {
                for toward_final in [true, false] {
                    let mut candidate = best[0].clone();
                    if toward_final {
                        candidate
                            .initial
                            .set_table(sw, candidate.final_config.table(sw));
                    } else {
                        candidate
                            .final_config
                            .set_table(sw, candidate.initial.table(sw));
                    }
                    if candidate.initial == candidate.final_config {
                        continue;
                    }
                    if try_candidate(vec![candidate], &mut best, &mut best_failure, &mut checks) {
                        progress = true;
                        break;
                    }
                }
                if progress {
                    break;
                }
            }
        }
    }

    // 4. Specification shrinking: drop top-level conjuncts to a fixpoint
    // (uniformly across the stream, preserving the fixed-spec invariant).
    let mut progress = true;
    while progress && checks < SHRINK_BUDGET {
        progress = false;
        let parts = conjuncts(&best[0].spec);
        if parts.len() <= 1 {
            break;
        }
        for drop in 0..parts.len() {
            let reduced = Ltl::and_all(
                parts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, c)| c.clone()),
            );
            let mut candidate = best.clone();
            for problem in &mut candidate {
                problem.spec = reduced.clone();
            }
            if try_candidate(candidate, &mut best, &mut best_failure, &mut checks) {
                progress = true;
                break;
            }
        }
    }

    // 5. Dropping conjuncts or switches may have freed more of the topology.
    if let Some(candidate) = restrict_topology(&best) {
        try_candidate(candidate, &mut best, &mut best_failure, &mut checks);
    }

    (best, best_failure)
}

/// Renders a self-contained reproducer for a failing (ideally minimized)
/// stream: everything needed to reconstruct the problems by hand.
pub fn render_reproducer(
    descriptor: &str,
    master_seed: u64,
    case_index: usize,
    problems: &[UpdateProblem],
    failure: &MatrixFailure,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== netupd-fuzz reproducer ===");
    let _ = writeln!(
        out,
        "case: {descriptor} (master seed {master_seed:#x}, index {case_index})"
    );
    let _ = writeln!(
        out,
        "failure at request {}: {}",
        failure.request, failure.detail
    );
    if let Some(first) = problems.first() {
        let topo = &first.topology;
        let _ = writeln!(out, "topology: {topo}");
        for link in topo.links() {
            let _ = writeln!(out, "  link {} -> {}", link.src, link.dst);
        }
    }
    for (i, problem) in problems.iter().enumerate() {
        let _ = writeln!(out, "request {i}:");
        let _ = writeln!(out, "  spec: {}", problem.spec);
        let classes: Vec<String> = problem
            .classes
            .iter()
            .map(|c| {
                c.iter()
                    .map(|(f, v)| format!("{f}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let _ = writeln!(out, "  classes: [{}]", classes.join(" | "));
        let ingress: Vec<String> = problem
            .ingress_hosts
            .iter()
            .map(|h| h.to_string())
            .collect();
        let _ = writeln!(out, "  ingress: [{}]", ingress.join(", "));
        for (label, config) in [
            ("initial", &problem.initial),
            ("final", &problem.final_config),
        ] {
            let _ = writeln!(out, "  {label}:");
            for (sw, table) in config.iter() {
                let rules: Vec<String> = table.iter().map(|r| r.to_string()).collect();
                let _ = writeln!(out, "    {sw}: {}", rules.join("; "));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netupd_ltl::builders;
    use netupd_topo::generators;
    use netupd_topo::scenario::{diamond_scenario, PropertyKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_problem() -> UpdateProblem {
        let mut rng = StdRng::seed_from_u64(12);
        let graph = generators::fat_tree(4);
        let scenario = diamond_scenario(&graph, PropertyKind::Reachability, &mut rng).unwrap();
        UpdateProblem::from_scenario(&scenario)
    }

    #[test]
    fn conjunct_flattening_matches_and_structure() {
        let a = builders::reachability(Prop::at_host(1));
        let b = builders::no_drops();
        let c = builders::always_avoids(Prop::switch(3));
        let parts = conjuncts(&Ltl::and(a.clone(), Ltl::and(b.clone(), c.clone())));
        assert_eq!(parts, vec![a, b, c]);
    }

    #[test]
    fn map_props_rewrites_every_atom() {
        let phi = Ltl::and(
            builders::reachability(Prop::at_host(2)),
            builders::always_avoids(Prop::switch(5)),
        );
        let mapped = map_props(&phi, &|p| match p {
            Prop::AtHost(HostId(2)) => Prop::at_host(0),
            Prop::Switch(SwitchId(5)) => Prop::switch(1),
            other => other,
        });
        let expected = Ltl::and(
            builders::reachability(Prop::at_host(0)),
            builders::always_avoids(Prop::switch(1)),
        );
        assert_eq!(mapped, expected);
    }

    #[test]
    fn topology_restriction_preserves_solvability() {
        let problem = sample_problem();
        let before = problem.topology.num_switches();
        let restricted =
            restrict_topology(std::slice::from_ref(&problem)).expect("fat tree shrinks");
        assert_eq!(restricted.len(), 1);
        let small = &restricted[0];
        assert!(
            small.topology.num_switches() < before,
            "expected fewer than {before} switches"
        );
        // The restricted problem is semantically equivalent: still solvable,
        // and the solution passes the oracle-backed matrix check.
        let stats = check_stream(&restricted, Granularity::Switch).expect("still clean");
        assert_eq!(stats.solved, 1);
    }

    #[test]
    fn reproducer_mentions_spec_and_configs() {
        let problem = sample_problem();
        let failure = MatrixFailure {
            request: 0,
            detail: "synthetic".to_string(),
        };
        let text = render_reproducer("demo", 1, 2, &[problem], &failure);
        assert!(text.contains("netupd-fuzz reproducer"));
        assert!(text.contains("spec:"));
        assert!(text.contains("initial:"));
        assert!(text.contains("final:"));
        assert!(text.contains("synthetic"));
    }
}
