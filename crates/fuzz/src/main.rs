//! Command-line front end for the differential fuzzer.
//!
//! ```text
//! cargo run -p netupd-fuzz -- --seed 0x5eedcafe --cases 200
//! ```
//!
//! Exits non-zero when any discrepancy is found, printing a minimized
//! self-contained reproducer for each.

use std::process::ExitCode;

use netupd_fuzz::{budget_from_env, run, FuzzOptions};

fn parse_u64(value: &str) -> Option<u64> {
    if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        value.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut options = FuzzOptions {
        cases: budget_from_env(FuzzOptions::default().cases),
        ..FuzzOptions::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().as_deref().and_then(parse_u64) {
                Some(seed) => options.seed = seed,
                None => return usage("--seed needs a decimal or 0x-hex value"),
            },
            "--cases" => match args.next().and_then(|v| v.parse().ok()) {
                Some(cases) => options.cases = cases,
                None => return usage("--cases needs a number"),
            },
            "--no-minimize" => options.minimize = false,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = run(&options);
    println!("{}", report.summary());
    if report.discrepancies.is_empty() {
        ExitCode::SUCCESS
    } else {
        for discrepancy in &report.discrepancies {
            eprintln!();
            eprintln!("{}", discrepancy.reproducer);
            eprintln!(
                "re-run just this case with: cargo run -p netupd-fuzz -- --seed {:#x} --cases {} \
                 # case index {}",
                report.seed,
                discrepancy.case_index + 1,
                discrepancy.case_index
            );
        }
        ExitCode::FAILURE
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: netupd-fuzz [--seed N|0xN] [--cases N] [--no-minimize]\n\
         \n\
         Seeded differential fuzzing of the update synthesizer across the full\n\
         behavior matrix. NETUPD_FUZZ_BUDGET overrides the default case count."
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
