//! Error types for the network model.

use std::fmt;

use crate::types::{HostId, SwitchId};

/// Errors produced by the network model and simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A command referenced a switch that does not exist in the topology.
    UnknownSwitch(SwitchId),
    /// A packet was injected at a host that does not exist in the topology.
    UnknownHost(HostId),
    /// A configuration induces a forwarding loop for the given traffic class
    /// description.
    ForwardingLoop(String),
    /// The simulator exceeded its step budget without quiescing.
    StepBudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// A flush command could not complete because packets never drained.
    FlushStalled,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownSwitch(sw) => write!(f, "unknown switch {sw}"),
            ModelError::UnknownHost(h) => write!(f, "unknown host {h}"),
            ModelError::ForwardingLoop(desc) => write!(f, "forwarding loop detected: {desc}"),
            ModelError::StepBudgetExceeded { budget } => {
                write!(f, "simulator exceeded step budget of {budget}")
            }
            ModelError::FlushStalled => write!(f, "flush did not drain in-flight packets"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::UnknownSwitch(SwitchId(4)).to_string(),
            "unknown switch s4"
        );
        assert_eq!(
            ModelError::StepBudgetExceeded { budget: 10 }.to_string(),
            "simulator exceeded step budget of 10"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<ModelError>();
    }
}
