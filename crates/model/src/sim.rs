//! A discrete-event simulator for the operational semantics of Figure 3.
//!
//! The simulator executes the small-step rules of the paper (IN, OUT, PROCESS,
//! FORWARD, UPDATE, INCR, FLUSH) on a concrete schedule: at every tick each
//! link delivers its queued packets to the adjacent switch, which processes
//! them with its *current* table, and the controller issues at most one
//! command (updates take a configurable number of ticks, modelling the
//! seconds-long rule-installation latency the paper cites).
//!
//! This is the substrate for reproducing Figure 2 of the paper: probe packets
//! are injected while an update executes and the report records which probes
//! made it to their destination and how many rules each switch held over time.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::command::{Command, CommandSeq};
use crate::config::Configuration;
use crate::error::ModelError;
use crate::packet::Packet;
use crate::topology::{Endpoint, Topology};
use crate::types::{Epoch, HostId, PortId, SwitchId};

/// Options controlling the simulator's timing model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulatorOptions {
    /// Number of ticks it takes the controller to install one switch update.
    /// The paper notes single-switch updates can take orders of magnitude
    /// longer than packet transit, so this defaults to a value much larger
    /// than one hop per tick.
    pub ticks_per_update: u64,
    /// Number of ticks consumed by an `incr` command.
    pub ticks_per_incr: u64,
    /// Safety bound on the total number of ticks a single `run` may take.
    pub max_ticks: u64,
    /// Maximum number of hops a packet may take before the simulator declares
    /// a forwarding loop and drops it (recording the drop).
    pub max_hops: u32,
}

impl Default for SimulatorOptions {
    fn default() -> Self {
        SimulatorOptions {
            ticks_per_update: 20,
            ticks_per_incr: 1,
            max_ticks: 100_000,
            max_hops: 64,
        }
    }
}

/// A packet in flight, carrying its ingress epoch and a hop counter.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    packet: Packet,
    epoch: Epoch,
    hops: u32,
}

/// An event recorded by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// A packet entered the network at a host (rule IN).
    Ingress {
        /// Tick at which the packet entered.
        tick: u64,
        /// The host that emitted the packet.
        host: HostId,
        /// The packet.
        packet: Packet,
    },
    /// A packet exited the network at a host (rule OUT).
    Egress {
        /// Tick at which the packet was delivered.
        tick: u64,
        /// The destination host.
        host: HostId,
        /// The packet.
        packet: Packet,
    },
    /// A packet was dropped at a switch (no matching rule, drop rule, dangling
    /// port, or hop budget exceeded).
    Drop {
        /// Tick at which the packet was dropped.
        tick: u64,
        /// The switch at which the drop occurred.
        switch: SwitchId,
        /// The packet.
        packet: Packet,
    },
    /// A switch's table was replaced (rule UPDATE).
    Update {
        /// Tick at which the new table became active.
        tick: u64,
        /// The updated switch.
        switch: SwitchId,
    },
    /// The controller finished a flush (all old-epoch packets drained).
    FlushDone {
        /// Tick at which the flush completed.
        tick: u64,
        /// The epoch that was flushed up to.
        epoch: Epoch,
    },
}

/// A periodically injected probe stream, used to reproduce Figure 2(a).
#[derive(Debug, Clone)]
struct ProbeStream {
    host: HostId,
    packet: Packet,
    period: u64,
}

/// Summary of a probe experiment: how many probes were sent and received in
/// each time bucket, and the maximum number of rules each switch held.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProbeReport {
    /// Per-tick count of probes injected.
    pub sent_per_tick: BTreeMap<u64, usize>,
    /// Per-tick count of probes delivered to any host.
    pub received_per_tick: BTreeMap<u64, usize>,
    /// Per-tick count of probes dropped inside the network.
    pub dropped_per_tick: BTreeMap<u64, usize>,
    /// Maximum number of rules observed on each switch at any point.
    pub max_rules_per_switch: BTreeMap<SwitchId, usize>,
    /// Tick at which the last controller command completed (0 if none).
    pub update_finished_at: u64,
}

impl ProbeReport {
    /// Total number of probes sent.
    pub fn total_sent(&self) -> usize {
        self.sent_per_tick.values().sum()
    }

    /// Total number of probes received.
    pub fn total_received(&self) -> usize {
        self.received_per_tick.values().sum()
    }

    /// Total number of probes dropped.
    pub fn total_dropped(&self) -> usize {
        self.dropped_per_tick.values().sum()
    }

    /// Fraction of probes received, in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        let sent = self.total_sent();
        if sent == 0 {
            1.0
        } else {
            self.total_received() as f64 / sent as f64
        }
    }

    /// Fraction of probes received within the window `[from, to)` of
    /// injection ticks, in `[0, 1]`. Uses sent counts as the denominator.
    pub fn delivery_ratio_in(&self, from: u64, to: u64) -> f64 {
        let sent: usize = self.sent_per_tick.range(from..to).map(|(_, c)| *c).sum();
        let received: usize = self
            .received_per_tick
            .range(from..to)
            .map(|(_, c)| *c)
            .sum();
        if sent == 0 {
            1.0
        } else {
            received as f64 / sent as f64
        }
    }
}

/// Pending controller work derived from a [`CommandSeq`].
#[derive(Debug, Clone)]
enum ControllerState {
    Idle,
    /// Waiting `remaining` ticks before the command at the head of the queue
    /// takes effect.
    Busy {
        remaining: u64,
    },
    /// Blocked on a flush: waiting for all packets with epoch `< target` to
    /// leave the network.
    Flushing {
        target: Epoch,
    },
}

/// The discrete-event simulator.
///
/// See the [module documentation](self) for the timing model.
#[derive(Debug, Clone)]
pub struct Simulator {
    topology: Arc<Topology>,
    config: Configuration,
    options: SimulatorOptions,
    /// Per-link FIFO queues of in-flight packets, indexed by link id.
    link_queues: Vec<VecDeque<InFlight>>,
    commands: VecDeque<Command>,
    controller: ControllerState,
    epoch: Epoch,
    tick: u64,
    probes: Vec<ProbeStream>,
    events: Vec<SimEvent>,
    report: ProbeReport,
}

impl Simulator {
    /// Creates a simulator over `topology` starting from `initial` tables.
    ///
    /// The topology is shared (`Arc`); passing an owned [`Topology`] wraps it
    /// without copying, and callers that already hold an `Arc` share it.
    pub fn new(topology: impl Into<Arc<Topology>>, initial: Configuration) -> Self {
        let topology = topology.into();
        let link_queues = vec![VecDeque::new(); topology.num_links()];
        let mut report = ProbeReport::default();
        for (sw, table) in initial.iter() {
            report.max_rules_per_switch.insert(sw, table.len());
        }
        Simulator {
            topology,
            config: initial,
            options: SimulatorOptions::default(),
            link_queues,
            commands: VecDeque::new(),
            controller: ControllerState::Idle,
            epoch: Epoch::ZERO,
            tick: 0,
            probes: Vec::new(),
            events: Vec::new(),
            report,
        }
    }

    /// Overrides the timing options.
    #[must_use]
    pub fn with_options(mut self, options: SimulatorOptions) -> Self {
        self.options = options;
        self
    }

    /// Schedules a command sequence for the controller to execute.
    pub fn schedule_commands(&mut self, cmds: CommandSeq) {
        self.commands.extend(cmds);
    }

    /// Registers a probe stream: starting at tick 0, a copy of `packet` is
    /// injected at `host` every `period` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn add_probe_stream(&mut self, host: HostId, packet: Packet, period: u64) {
        assert!(period > 0, "probe period must be positive");
        self.probes.push(ProbeStream {
            host,
            packet,
            period,
        });
    }

    /// The current configuration installed in the data plane.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// The current controller epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The current tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// All recorded events so far.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Returns `true` if no packets are in flight anywhere in the network.
    pub fn is_quiescent(&self) -> bool {
        self.link_queues.iter().all(VecDeque::is_empty)
    }

    /// Returns `true` if the network is *stable*: all in-flight packets carry
    /// the current epoch (no update is in progress from the packets' point of
    /// view).
    pub fn is_stable(&self) -> bool {
        self.link_queues
            .iter()
            .flatten()
            .all(|p| p.epoch == self.epoch)
    }

    /// Runs the simulation for `ticks` ticks (or until the configured
    /// `max_ticks` budget is exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StepBudgetExceeded`] if the run would exceed the
    /// configured tick budget.
    pub fn run(&mut self, ticks: u64) -> Result<&ProbeReport, ModelError> {
        if self.tick + ticks > self.options.max_ticks {
            return Err(ModelError::StepBudgetExceeded {
                budget: self.options.max_ticks as usize,
            });
        }
        for _ in 0..ticks {
            self.step();
        }
        Ok(&self.report)
    }

    /// Runs until the controller has executed every scheduled command and the
    /// network has quiesced (no packets in flight and no probes scheduled).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StepBudgetExceeded`] if the tick budget runs out
    /// first (e.g. because a forwarding loop keeps packets alive forever).
    pub fn run_to_completion(&mut self) -> Result<&ProbeReport, ModelError> {
        while !(self.commands.is_empty()
            && matches!(self.controller, ControllerState::Idle)
            && self.is_quiescent())
        {
            if self.tick >= self.options.max_ticks {
                return Err(ModelError::StepBudgetExceeded {
                    budget: self.options.max_ticks as usize,
                });
            }
            self.step();
        }
        Ok(&self.report)
    }

    /// The probe report accumulated so far.
    pub fn report(&self) -> &ProbeReport {
        &self.report
    }

    /// Executes one tick: controller action, packet forwarding, probe
    /// injection.
    pub fn step(&mut self) {
        self.step_controller();
        self.step_data_plane();
        self.step_probes();
        self.tick += 1;
    }

    // ---- controller plane -------------------------------------------------

    fn step_controller(&mut self) {
        match self.controller {
            ControllerState::Idle => {
                if let Some(cmd) = self.commands.front() {
                    let delay = match cmd {
                        Command::Update(..) => self.options.ticks_per_update,
                        Command::Incr => self.options.ticks_per_incr,
                        Command::Flush => 0,
                    };
                    if delay == 0 {
                        self.execute_front_command();
                    } else {
                        self.controller = ControllerState::Busy { remaining: delay };
                    }
                }
            }
            ControllerState::Busy { remaining } => {
                if remaining <= 1 {
                    self.controller = ControllerState::Idle;
                    self.execute_front_command();
                } else {
                    self.controller = ControllerState::Busy {
                        remaining: remaining - 1,
                    };
                }
            }
            ControllerState::Flushing { target } => {
                if self.min_inflight_epoch().is_none_or(|e| e >= target) {
                    self.events.push(SimEvent::FlushDone {
                        tick: self.tick,
                        epoch: target,
                    });
                    self.controller = ControllerState::Idle;
                    self.note_command_progress();
                }
            }
        }
    }

    fn execute_front_command(&mut self) {
        let Some(cmd) = self.commands.pop_front() else {
            return;
        };
        match cmd {
            Command::Update(sw, table) => {
                let count = table.len();
                let entry = self.report.max_rules_per_switch.entry(sw).or_insert(0);
                // During installation both rule sets may coexist in TCAM; the
                // overhead we report is the maximum of old+new vs either.
                let overlap = self.config.rules_on(sw) + count;
                *entry = (*entry).max(overlap).max(count);
                self.config.set_table(sw, table);
                self.events.push(SimEvent::Update {
                    tick: self.tick,
                    switch: sw,
                });
                self.note_command_progress();
            }
            Command::Incr => {
                self.epoch = self.epoch.next();
                self.note_command_progress();
            }
            Command::Flush => {
                self.controller = ControllerState::Flushing { target: self.epoch };
                // Completion is recorded when the flush actually finishes.
            }
        }
    }

    fn note_command_progress(&mut self) {
        if self.commands.is_empty() && matches!(self.controller, ControllerState::Idle) {
            self.report.update_finished_at = self.tick;
        }
    }

    fn min_inflight_epoch(&self) -> Option<Epoch> {
        self.link_queues.iter().flatten().map(|p| p.epoch).min()
    }

    // ---- data plane --------------------------------------------------------

    fn step_data_plane(&mut self) {
        // Collect the packets delivered to each switch this tick, then process
        // them against the switch's *current* table; outputs are enqueued on
        // outgoing links and will be handled next tick (one hop per tick).
        let mut arrivals: Vec<(SwitchId, PortId, InFlight)> = Vec::new();
        let mut deliveries: Vec<(HostId, InFlight)> = Vec::new();

        for (idx, queue) in self.link_queues.iter_mut().enumerate() {
            if queue.is_empty() {
                continue;
            }
            let link = self.topology.links()[idx];
            while let Some(pkt) = queue.pop_front() {
                match link.dst {
                    Endpoint::SwitchPort(sw, pt) => arrivals.push((sw, pt, pkt)),
                    Endpoint::Host(h) => deliveries.push((h, pkt)),
                }
            }
        }

        for (host, inflight) in deliveries {
            *self.report.received_per_tick.entry(self.tick).or_insert(0) += 1;
            self.events.push(SimEvent::Egress {
                tick: self.tick,
                host,
                packet: inflight.packet,
            });
        }

        for (sw, pt, inflight) in arrivals {
            if inflight.hops >= self.options.max_hops {
                self.record_drop(sw, inflight.packet);
                continue;
            }
            let outputs = self.config.table(sw).process(&inflight.packet, pt);
            if outputs.is_empty() {
                self.record_drop(sw, inflight.packet);
                continue;
            }
            for (packet, out_port) in outputs {
                match self.topology.link_from_port(sw, out_port) {
                    None => self.record_drop(sw, packet),
                    Some((link_id, _)) => {
                        self.link_queues[link_id.0].push_back(InFlight {
                            packet,
                            epoch: inflight.epoch,
                            hops: inflight.hops + 1,
                        });
                    }
                }
            }
        }
    }

    fn record_drop(&mut self, switch: SwitchId, packet: Packet) {
        *self.report.dropped_per_tick.entry(self.tick).or_insert(0) += 1;
        self.events.push(SimEvent::Drop {
            tick: self.tick,
            switch,
            packet,
        });
    }

    fn step_probes(&mut self) {
        let tick = self.tick;
        let epoch = self.epoch;
        let mut to_inject = Vec::new();
        for probe in &self.probes {
            if tick.is_multiple_of(probe.period) {
                to_inject.push((probe.host, probe.packet.clone()));
            }
        }
        for (host, packet) in to_inject {
            self.inject(host, packet, epoch);
        }
    }

    /// Injects a single packet at `host` immediately (rule IN).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownHost`] if the host has no ingress link.
    pub fn inject_packet(&mut self, host: HostId, packet: Packet) -> Result<(), ModelError> {
        if self.topology.switch_of_host(host).is_none() {
            return Err(ModelError::UnknownHost(host));
        }
        let epoch = self.epoch;
        self.inject(host, packet, epoch);
        Ok(())
    }

    fn inject(&mut self, host: HostId, packet: Packet, epoch: Epoch) {
        let Some(link_id) = self
            .topology
            .ingress_links()
            .find(|(_, l)| l.src == Endpoint::host(host))
            .map(|(id, _)| id)
        else {
            return;
        };
        *self.report.sent_per_tick.entry(self.tick).or_insert(0) += 1;
        self.events.push(SimEvent::Ingress {
            tick: self.tick,
            host,
            packet: packet.clone(),
        });
        self.link_queues[link_id.0].push_back(InFlight {
            packet,
            epoch,
            hops: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::packet::Field;
    use crate::pattern::Pattern;
    use crate::rule::Rule;
    use crate::table::Table;
    use crate::types::Priority;

    /// h0 -- s0 -- s1 -- h1, forwarding dst=1 toward h1.
    fn line() -> (Topology, Configuration, HostId, HostId, SwitchId, SwitchId) {
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let s0 = topo.add_switch();
        let s1 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.add_duplex_link(s0, PortId(2), s1, PortId(1));
        topo.attach_host(h1, s1, PortId(2));
        let fwd = |port: u32| {
            Table::new(vec![Rule::new(
                Priority(1),
                Pattern::any().with_field(Field::Dst, 1),
                vec![Action::Forward(PortId(port))],
            )])
        };
        let config = Configuration::new()
            .with_table(s0, fwd(2))
            .with_table(s1, fwd(2));
        (topo, config, h0, h1, s0, s1)
    }

    fn probe() -> Packet {
        Packet::new()
            .with_field(Field::Dst, 1)
            .with_field(Field::Typ, 1)
    }

    #[test]
    fn packet_traverses_line() {
        let (topo, config, h0, _h1, ..) = line();
        let mut sim = Simulator::new(topo, config);
        sim.inject_packet(h0, probe()).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.report().total_received(), 1);
        assert_eq!(sim.report().total_dropped(), 0);
        assert!(sim.is_quiescent());
    }

    #[test]
    fn empty_table_drops_packet() {
        let (topo, _config, h0, ..) = line();
        let mut sim = Simulator::new(topo, Configuration::new());
        sim.inject_packet(h0, probe()).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.report().total_received(), 0);
        assert_eq!(sim.report().total_dropped(), 1);
    }

    #[test]
    fn unknown_host_rejected() {
        let (topo, config, ..) = line();
        let mut sim = Simulator::new(topo, config);
        assert_eq!(
            sim.inject_packet(HostId(99), probe()),
            Err(ModelError::UnknownHost(HostId(99)))
        );
    }

    #[test]
    fn probe_stream_counts_sent_and_received() {
        let (topo, config, h0, ..) = line();
        let mut sim = Simulator::new(topo, config);
        sim.add_probe_stream(h0, probe(), 2);
        sim.run(20).unwrap();
        assert_eq!(sim.report().total_sent(), 10);
        // All probes that have had time to traverse are delivered.
        assert!(sim.report().total_received() >= 8);
        assert_eq!(sim.report().total_dropped(), 0);
    }

    #[test]
    fn update_command_changes_forwarding() {
        let (topo, config, h0, _h1, s0, _s1) = line();
        let mut sim = Simulator::new(topo, config).with_options(SimulatorOptions {
            ticks_per_update: 1,
            ..SimulatorOptions::default()
        });
        // Replace s0's table with an empty one: packets start being dropped.
        let mut cmds = CommandSeq::new();
        cmds.push_update(s0, Table::empty());
        sim.schedule_commands(cmds);
        sim.add_probe_stream(h0, probe(), 1);
        sim.run(20).unwrap();
        assert!(sim.report().total_dropped() > 0);
    }

    #[test]
    fn flush_completes_once_drained() {
        let (topo, config, h0, ..) = line();
        let mut sim = Simulator::new(topo, config);
        sim.inject_packet(h0, probe()).unwrap();
        let mut cmds = CommandSeq::new();
        cmds.push_wait();
        sim.schedule_commands(cmds);
        sim.run_to_completion().unwrap();
        assert!(sim
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::FlushDone { .. })));
        assert_eq!(sim.epoch(), Epoch(1));
    }

    #[test]
    fn loop_is_cut_by_hop_budget() {
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let s0 = topo.add_switch();
        let s1 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.add_duplex_link(s0, PortId(2), s1, PortId(1));
        let fwd = |port: u32| {
            Table::new(vec![Rule::new(
                Priority(1),
                Pattern::any(),
                vec![Action::Forward(PortId(port))],
            )])
        };
        let config = Configuration::new()
            .with_table(s0, fwd(2))
            .with_table(s1, fwd(1));
        let mut sim = Simulator::new(topo, config).with_options(SimulatorOptions {
            max_hops: 8,
            ..SimulatorOptions::default()
        });
        sim.inject_packet(h0, Packet::new()).unwrap();
        sim.run(100).unwrap();
        assert_eq!(sim.report().total_dropped(), 1);
        assert!(sim.is_quiescent());
    }

    #[test]
    fn rule_overhead_tracks_coexisting_tables() {
        let (topo, config, _h0, _h1, s0, _s1) = line();
        let mut sim = Simulator::new(topo, config.clone()).with_options(SimulatorOptions {
            ticks_per_update: 1,
            ..SimulatorOptions::default()
        });
        // Install a second rule set on s0: max rules observed is old + new.
        let bigger = Table::new(vec![
            Rule::new(
                Priority(5),
                Pattern::any(),
                vec![Action::Forward(PortId(2))],
            ),
            Rule::new(
                Priority(4),
                Pattern::any(),
                vec![Action::Forward(PortId(2))],
            ),
        ]);
        let mut cmds = CommandSeq::new();
        cmds.push_update(s0, bigger);
        sim.schedule_commands(cmds);
        sim.run_to_completion().unwrap();
        assert_eq!(sim.report().max_rules_per_switch[&s0], 3);
    }

    #[test]
    fn run_budget_is_enforced() {
        let (topo, config, ..) = line();
        let mut sim = Simulator::new(topo, config).with_options(SimulatorOptions {
            max_ticks: 5,
            ..SimulatorOptions::default()
        });
        assert!(matches!(
            sim.run(10),
            Err(ModelError::StepBudgetExceeded { .. })
        ));
    }
}
