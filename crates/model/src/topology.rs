//! Network topologies: switches, hosts, and the links connecting them.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::{HostId, PortId, SwitchId};

/// One end of a link: either a host or a `(switch, port)` pair.
///
/// This is the `loc` of the paper's link records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// An end host.
    Host(HostId),
    /// A port on a switch.
    SwitchPort(SwitchId, PortId),
}

impl Endpoint {
    /// Convenience constructor for a host endpoint.
    pub fn host(h: HostId) -> Self {
        Endpoint::Host(h)
    }

    /// Convenience constructor for a switch-port endpoint.
    pub fn port(sw: SwitchId, pt: PortId) -> Self {
        Endpoint::SwitchPort(sw, pt)
    }

    /// The switch of this endpoint, if it is a switch port.
    pub fn switch(&self) -> Option<SwitchId> {
        match self {
            Endpoint::SwitchPort(sw, _) => Some(*sw),
            Endpoint::Host(_) => None,
        }
    }

    /// The host of this endpoint, if it is a host.
    pub fn as_host(&self) -> Option<HostId> {
        match self {
            Endpoint::Host(h) => Some(*h),
            Endpoint::SwitchPort(..) => None,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Host(h) => write!(f, "{h}"),
            Endpoint::SwitchPort(sw, pt) => write!(f, "{sw}:{pt}"),
        }
    }
}

/// Identifier of a (directed) link within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// A directed link from `src` to `dst`.
///
/// The paper's links carry a queue of in-flight packets; the queues live in
/// the simulator ([`crate::sim::Simulator`]), keeping the topology itself
/// purely structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
}

/// A network topology: a directed graph over switches and hosts.
///
/// Bidirectional physical cables are modeled as a pair of directed links; use
/// [`Topology::add_duplex_link`] for that common case.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Topology {
    switches: Vec<SwitchId>,
    hosts: Vec<HostId>,
    links: Vec<Link>,
    /// Outgoing links indexed by source switch.
    out_by_switch: BTreeMap<SwitchId, Vec<LinkId>>,
    /// Incoming links indexed by destination switch.
    in_by_switch: BTreeMap<SwitchId, Vec<LinkId>>,
    next_switch: u32,
    next_host: u32,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a fresh switch and returns its identifier.
    pub fn add_switch(&mut self) -> SwitchId {
        let id = SwitchId(self.next_switch);
        self.next_switch += 1;
        self.switches.push(id);
        id
    }

    /// Adds `n` fresh switches and returns their identifiers.
    pub fn add_switches(&mut self, n: usize) -> Vec<SwitchId> {
        (0..n).map(|_| self.add_switch()).collect()
    }

    /// Adds a fresh host and returns its identifier.
    pub fn add_host(&mut self) -> HostId {
        let id = HostId(self.next_host);
        self.next_host += 1;
        self.hosts.push(id);
        id
    }

    /// Adds a directed link and returns its identifier.
    pub fn add_link(&mut self, src: Endpoint, dst: Endpoint) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link { src, dst });
        if let Some(sw) = src.switch() {
            self.out_by_switch.entry(sw).or_default().push(id);
        }
        if let Some(sw) = dst.switch() {
            self.in_by_switch.entry(sw).or_default().push(id);
        }
        id
    }

    /// Adds a pair of directed links modelling a bidirectional cable between
    /// two switches, using the given port numbers on each side.
    ///
    /// Returns the two link identifiers (a→b, b→a).
    pub fn add_duplex_link(
        &mut self,
        a: SwitchId,
        a_port: PortId,
        b: SwitchId,
        b_port: PortId,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(Endpoint::port(a, a_port), Endpoint::port(b, b_port));
        let ba = self.add_link(Endpoint::port(b, b_port), Endpoint::port(a, a_port));
        (ab, ba)
    }

    /// Attaches a host to a switch port with links in both directions.
    pub fn attach_host(&mut self, host: HostId, sw: SwitchId, port: PortId) -> (LinkId, LinkId) {
        let h2s = self.add_link(Endpoint::host(host), Endpoint::port(sw, port));
        let s2h = self.add_link(Endpoint::port(sw, port), Endpoint::host(host));
        (h2s, s2h)
    }

    /// All switches, in creation order.
    pub fn switches(&self) -> &[SwitchId] {
        &self.switches
    }

    /// All hosts, in creation order.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// All links, in creation order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this topology.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Links whose source is a port of `sw`.
    pub fn links_from_switch(&self, sw: SwitchId) -> impl Iterator<Item = (LinkId, &Link)> {
        self.out_by_switch
            .get(&sw)
            .into_iter()
            .flatten()
            .map(move |id| (*id, &self.links[id.0]))
    }

    /// Links whose destination is a port of `sw`.
    pub fn links_to_switch(&self, sw: SwitchId) -> impl Iterator<Item = (LinkId, &Link)> {
        self.in_by_switch
            .get(&sw)
            .into_iter()
            .flatten()
            .map(move |id| (*id, &self.links[id.0]))
    }

    /// Ingress links: links whose source is a host.
    pub fn ingress_links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l.src, Endpoint::Host(_)))
            .map(|(i, l)| (LinkId(i), l))
    }

    /// Egress links: links whose destination is a host.
    pub fn egress_links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l.dst, Endpoint::Host(_)))
            .map(|(i, l)| (LinkId(i), l))
    }

    /// The link leaving `(sw, out_port)`, if one exists.
    ///
    /// Forwarding out of a port that has no attached link silently drops the
    /// packet, mirroring real switch behaviour.
    pub fn link_from_port(&self, sw: SwitchId, out_port: PortId) -> Option<(LinkId, &Link)> {
        self.links_from_switch(sw)
            .find(|(_, l)| l.src == Endpoint::port(sw, out_port))
    }

    /// The host reachable directly out of `(sw, out_port)`, if any.
    pub fn host_from_port(&self, sw: SwitchId, out_port: PortId) -> Option<HostId> {
        self.link_from_port(sw, out_port)
            .and_then(|(_, l)| l.dst.as_host())
    }

    /// The switch adjacent to `host`, with the port and direction host→switch.
    pub fn switch_of_host(&self, host: HostId) -> Option<(SwitchId, PortId)> {
        self.links.iter().find_map(|l| {
            if l.src == Endpoint::host(host) {
                match l.dst {
                    Endpoint::SwitchPort(sw, pt) => Some((sw, pt)),
                    Endpoint::Host(_) => None,
                }
            } else {
                None
            }
        })
    }

    /// Switch-level adjacency: all switches directly reachable from `sw`.
    pub fn neighbor_switches(&self, sw: SwitchId) -> Vec<SwitchId> {
        let mut out: Vec<SwitchId> = self
            .links_from_switch(sw)
            .filter_map(|(_, l)| l.dst.switch())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Returns `true` if the switch identifier exists in this topology.
    pub fn contains_switch(&self, sw: SwitchId) -> bool {
        self.switches.binary_search(&sw).is_ok() || self.switches.contains(&sw)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology({} switches, {} hosts, {} links)",
            self.num_switches(),
            self.num_hosts(),
            self.num_links()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_topology() -> (Topology, HostId, SwitchId, SwitchId, HostId) {
        // h0 -- s0 -- s1 -- h1
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let s0 = topo.add_switch();
        let s1 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.add_duplex_link(s0, PortId(2), s1, PortId(1));
        topo.attach_host(h1, s1, PortId(2));
        (topo, h0, s0, s1, h1)
    }

    #[test]
    fn counts() {
        let (topo, ..) = line_topology();
        assert_eq!(topo.num_switches(), 2);
        assert_eq!(topo.num_hosts(), 2);
        assert_eq!(topo.num_links(), 6);
    }

    #[test]
    fn ingress_and_egress_links() {
        let (topo, h0, _, _, h1) = line_topology();
        let ingress: Vec<_> = topo.ingress_links().map(|(_, l)| l.src).collect();
        assert!(ingress.contains(&Endpoint::host(h0)));
        assert!(ingress.contains(&Endpoint::host(h1)));
        assert_eq!(topo.egress_links().count(), 2);
    }

    #[test]
    fn link_from_port_lookup() {
        let (topo, _, s0, s1, _) = line_topology();
        let (_, link) = topo.link_from_port(s0, PortId(2)).expect("link exists");
        assert_eq!(link.dst, Endpoint::port(s1, PortId(1)));
        assert!(topo.link_from_port(s0, PortId(9)).is_none());
    }

    #[test]
    fn host_from_port_lookup() {
        let (topo, h0, s0, s1, h1) = line_topology();
        assert_eq!(topo.host_from_port(s0, PortId(1)), Some(h0));
        assert_eq!(topo.host_from_port(s1, PortId(2)), Some(h1));
        assert_eq!(topo.host_from_port(s0, PortId(2)), None);
    }

    #[test]
    fn switch_of_host_lookup() {
        let (topo, h0, s0, s1, h1) = line_topology();
        assert_eq!(topo.switch_of_host(h0), Some((s0, PortId(1))));
        assert_eq!(topo.switch_of_host(h1), Some((s1, PortId(2))));
    }

    #[test]
    fn neighbor_switches() {
        let (topo, _, s0, s1, _) = line_topology();
        assert_eq!(topo.neighbor_switches(s0), vec![s1]);
        assert_eq!(topo.neighbor_switches(s1), vec![s0]);
    }

    #[test]
    fn add_switches_bulk() {
        let mut topo = Topology::new();
        let ids = topo.add_switches(5);
        assert_eq!(ids.len(), 5);
        assert_eq!(topo.num_switches(), 5);
        // Identifiers are distinct.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }
}
