//! Forwarding-rule actions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::packet::Field;
use crate::types::PortId;

/// An action of a forwarding rule: either forward the packet out of a port, or
/// modify a header field.
///
/// Actions are applied in list order; field modifications affect the packet
/// seen by all subsequent `Forward` actions of the same rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Action {
    /// `fwd pt`: output the (current) packet on port `pt`.
    Forward(PortId),
    /// `f := n`: set header field `f` to `n`.
    SetField(Field, u64),
}

impl Action {
    /// Returns the output port if this is a `Forward` action.
    pub fn forward_port(&self) -> Option<PortId> {
        match self {
            Action::Forward(pt) => Some(*pt),
            Action::SetField(..) => None,
        }
    }

    /// Returns `true` if this action outputs a packet.
    pub fn is_forward(&self) -> bool {
        matches!(self, Action::Forward(_))
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Forward(pt) => write!(f, "fwd {pt}"),
            Action::SetField(field, v) => write!(f, "{field}:={v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_port_extraction() {
        assert_eq!(Action::Forward(PortId(3)).forward_port(), Some(PortId(3)));
        assert_eq!(Action::SetField(Field::Tag, 1).forward_port(), None);
    }

    #[test]
    fn is_forward() {
        assert!(Action::Forward(PortId(0)).is_forward());
        assert!(!Action::SetField(Field::Src, 2).is_forward());
    }

    #[test]
    fn display() {
        assert_eq!(Action::Forward(PortId(2)).to_string(), "fwd p2");
        assert_eq!(Action::SetField(Field::Tag, 1).to_string(), "tag:=1");
    }
}
