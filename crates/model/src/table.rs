//! Forwarding tables and their denotational semantics `[[tbl]]`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::packet::{Packet, TrafficClass};
use crate::rule::Rule;
use crate::types::PortId;

/// A forwarding table: a set of prioritized rules.
///
/// The semantic function [`Table::process`] maps a `(packet, port)` pair to
/// the multiset of `(packet, port)` pairs produced by the highest-priority
/// matching rule, or to the empty multiset (drop) when no rule matches.
///
/// Rules are kept sorted by descending priority; among rules with equal
/// priority the one added first wins, which makes the semantics deterministic
/// (the paper allows any choice among equal-priority matches).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Table {
    rules: Vec<Rule>,
}

impl Table {
    /// Creates a table from a collection of rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut table = Table { rules };
        table.normalize();
        table
    }

    /// The empty table (drops every packet).
    pub fn empty() -> Self {
        Table::default()
    }

    /// Adds a rule, keeping the table sorted by priority.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
        self.normalize();
    }

    /// Removes all rules equal to `rule`, returning how many were removed.
    pub fn remove_rule(&mut self, rule: &Rule) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r != rule);
        before - self.rules.len()
    }

    /// The rules, ordered by descending priority.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules in the table.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the table contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Returns an iterator over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    /// The semantic function `[[tbl]]`: processes `packet` arriving on `port`.
    ///
    /// Finds the highest-priority rule whose pattern matches and applies its
    /// actions; if no rule matches, the packet is dropped and the empty vector
    /// is returned.
    pub fn process(&self, packet: &Packet, port: PortId) -> Vec<(Packet, PortId)> {
        match self.matching_rule(packet, port) {
            Some(rule) => rule.apply(packet),
            None => Vec::new(),
        }
    }

    /// Returns the highest-priority rule matching `packet` on `port`, if any.
    pub fn matching_rule(&self, packet: &Packet, port: PortId) -> Option<&Rule> {
        self.rules.iter().find(|r| r.matches(packet, port))
    }

    /// Restricts the table to the rules that could affect packets of `class`.
    ///
    /// Used by rule-granularity updates and the header-space checker to narrow
    /// attention to the rules relevant to a traffic class.
    pub fn restrict_to_class(&self, class: &TrafficClass) -> Table {
        Table::new(
            self.rules
                .iter()
                .filter(|r| r.overlaps_class(class, None))
                .cloned()
                .collect(),
        )
    }

    /// Returns `true` if the two tables contain the same set of rules,
    /// regardless of insertion order among equal-priority rules.
    pub fn same_rules(&self, other: &Table) -> bool {
        let mut a = self.rules.clone();
        let mut b = other.rules.clone();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// Computes the symmetric difference with `other` as (removed, added) rules.
    pub fn diff(&self, other: &Table) -> (Vec<Rule>, Vec<Rule>) {
        let removed = self
            .rules
            .iter()
            .filter(|r| !other.rules.contains(r))
            .cloned()
            .collect();
        let added = other
            .rules
            .iter()
            .filter(|r| !self.rules.contains(r))
            .cloned()
            .collect();
        (removed, added)
    }

    fn normalize(&mut self) {
        // Stable sort: equal priorities keep insertion order.
        self.rules.sort_by_key(|r| std::cmp::Reverse(r.priority()));
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rules.is_empty() {
            return write!(f, "(empty table)");
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for Table {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        Table::new(iter.into_iter().collect())
    }
}

impl Extend<Rule> for Table {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
        self.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::packet::Field;
    use crate::pattern::Pattern;
    use crate::types::Priority;

    fn fwd_rule(pri: u32, dst: u64, port: u32) -> Rule {
        Rule::new(
            Priority(pri),
            Pattern::any().with_field(Field::Dst, dst),
            vec![Action::Forward(PortId(port))],
        )
    }

    #[test]
    fn empty_table_drops() {
        let table = Table::empty();
        assert!(table.process(&Packet::new(), PortId(0)).is_empty());
    }

    #[test]
    fn highest_priority_rule_wins() {
        let table = Table::new(vec![fwd_rule(1, 3, 1), fwd_rule(10, 3, 2)]);
        let pkt = Packet::new().with_field(Field::Dst, 3);
        let out = table.process(&pkt, PortId(0));
        assert_eq!(out, vec![(pkt, PortId(2))]);
    }

    #[test]
    fn equal_priority_is_first_added() {
        let table = Table::new(vec![fwd_rule(5, 3, 7), fwd_rule(5, 3, 8)]);
        let pkt = Packet::new().with_field(Field::Dst, 3);
        assert_eq!(table.process(&pkt, PortId(0))[0].1, PortId(7));
    }

    #[test]
    fn non_matching_packet_dropped() {
        let table = Table::new(vec![fwd_rule(1, 3, 1)]);
        let pkt = Packet::new().with_field(Field::Dst, 4);
        assert!(table.process(&pkt, PortId(0)).is_empty());
    }

    #[test]
    fn add_and_remove_rule() {
        let mut table = Table::empty();
        let rule = fwd_rule(1, 3, 1);
        table.add_rule(rule.clone());
        assert_eq!(table.len(), 1);
        assert_eq!(table.remove_rule(&rule), 1);
        assert!(table.is_empty());
    }

    #[test]
    fn restrict_to_class_keeps_overlapping_rules() {
        let table = Table::new(vec![fwd_rule(1, 3, 1), fwd_rule(1, 4, 2)]);
        let class = TrafficClass::new().with_field(Field::Dst, 3);
        let restricted = table.restrict_to_class(&class);
        assert_eq!(restricted.len(), 1);
        assert_eq!(restricted.rules()[0].pattern().field(Field::Dst), Some(3));
    }

    #[test]
    fn diff_detects_added_and_removed() {
        let old = Table::new(vec![fwd_rule(1, 3, 1), fwd_rule(1, 4, 2)]);
        let new = Table::new(vec![fwd_rule(1, 3, 1), fwd_rule(1, 5, 2)]);
        let (removed, added) = old.diff(&new);
        assert_eq!(removed.len(), 1);
        assert_eq!(added.len(), 1);
        assert_eq!(removed[0].pattern().field(Field::Dst), Some(4));
        assert_eq!(added[0].pattern().field(Field::Dst), Some(5));
    }

    #[test]
    fn collect_from_iterator() {
        let table: Table = vec![fwd_rule(2, 3, 1), fwd_rule(9, 3, 2)]
            .into_iter()
            .collect();
        assert_eq!(table.rules()[0].priority(), Priority(9));
    }
}
