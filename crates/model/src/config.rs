//! Network configurations: the data plane as a map from switches to tables.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::table::Table;
use crate::types::SwitchId;

/// A (static) network configuration: each switch's forwarding table.
///
/// Switches not present in the map have the empty table and therefore drop
/// every packet.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Configuration {
    tables: BTreeMap<SwitchId, Table>,
}

impl Configuration {
    /// Creates an empty configuration (all switches drop everything).
    pub fn new() -> Self {
        Configuration::default()
    }

    /// Sets the forwarding table of `sw`, replacing any previous table.
    pub fn set_table(&mut self, sw: SwitchId, table: Table) {
        self.tables.insert(sw, table);
    }

    /// Builder-style variant of [`Configuration::set_table`].
    #[must_use]
    pub fn with_table(mut self, sw: SwitchId, table: Table) -> Self {
        self.set_table(sw, table);
        self
    }

    /// The table of `sw` (empty if never set).
    pub fn table(&self, sw: SwitchId) -> Table {
        self.tables.get(&sw).cloned().unwrap_or_default()
    }

    /// A reference to the table of `sw`, if one was explicitly set.
    pub fn table_ref(&self, sw: SwitchId) -> Option<&Table> {
        self.tables.get(&sw)
    }

    /// Iterates over `(switch, table)` pairs in switch order.
    pub fn iter(&self) -> impl Iterator<Item = (SwitchId, &Table)> {
        self.tables.iter().map(|(sw, t)| (*sw, t))
    }

    /// Switches that have an explicitly set table.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.tables.keys().copied()
    }

    /// Number of switches with an explicitly set table.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Returns `true` if no switch has a table.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of rules across all switches.
    pub fn total_rules(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Number of rules installed on `sw`.
    pub fn rules_on(&self, sw: SwitchId) -> usize {
        self.tables.get(&sw).map_or(0, Table::len)
    }

    /// The functional update `N[sw <- tbl]` of the paper: a copy of this
    /// configuration with the table of `sw` replaced.
    #[must_use]
    pub fn updated(&self, sw: SwitchId, table: Table) -> Configuration {
        let mut next = self.clone();
        next.set_table(sw, table);
        next
    }

    /// Switches whose tables differ between `self` and `other`.
    ///
    /// This is the set of switches the synthesizer must update to move from
    /// one configuration to the other.
    pub fn differing_switches(&self, other: &Configuration) -> Vec<SwitchId> {
        let mut switches: Vec<SwitchId> = self
            .tables
            .keys()
            .chain(other.tables.keys())
            .copied()
            .collect();
        switches.sort_unstable();
        switches.dedup();
        switches
            .into_iter()
            .filter(|sw| self.table(*sw) != other.table(*sw))
            .collect()
    }

    /// Merges `other` into `self`, with `other`'s tables winning on conflict.
    pub fn merge(&mut self, other: &Configuration) {
        for (sw, table) in other.iter() {
            self.set_table(sw, table.clone());
        }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "configuration({} switches, {} rules)",
            self.len(),
            self.total_rules()
        )
    }
}

impl FromIterator<(SwitchId, Table)> for Configuration {
    fn from_iter<I: IntoIterator<Item = (SwitchId, Table)>>(iter: I) -> Self {
        Configuration {
            tables: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::pattern::Pattern;
    use crate::rule::Rule;
    use crate::types::{PortId, Priority};

    fn simple_table(port: u32) -> Table {
        Table::new(vec![Rule::new(
            Priority(1),
            Pattern::any(),
            vec![Action::Forward(PortId(port))],
        )])
    }

    #[test]
    fn unset_switch_has_empty_table() {
        let config = Configuration::new();
        assert!(config.table(SwitchId(7)).is_empty());
        assert_eq!(config.rules_on(SwitchId(7)), 0);
    }

    #[test]
    fn set_and_get_table() {
        let config = Configuration::new().with_table(SwitchId(1), simple_table(2));
        assert_eq!(config.table(SwitchId(1)).len(), 1);
        assert_eq!(config.total_rules(), 1);
    }

    #[test]
    fn updated_does_not_mutate_original() {
        let config = Configuration::new().with_table(SwitchId(1), simple_table(2));
        let updated = config.updated(SwitchId(1), simple_table(3));
        assert_ne!(config.table(SwitchId(1)), updated.table(SwitchId(1)));
        assert_eq!(config.table(SwitchId(1)), simple_table(2));
    }

    #[test]
    fn differing_switches_detects_changes() {
        let a = Configuration::new()
            .with_table(SwitchId(1), simple_table(2))
            .with_table(SwitchId(2), simple_table(3));
        let b = a.clone().updated(SwitchId(2), simple_table(4));
        assert_eq!(a.differing_switches(&b), vec![SwitchId(2)]);
        assert!(a.differing_switches(&a).is_empty());
    }

    #[test]
    fn differing_switches_detects_new_switch() {
        let a = Configuration::new();
        let b = Configuration::new().with_table(SwitchId(3), simple_table(1));
        assert_eq!(a.differing_switches(&b), vec![SwitchId(3)]);
    }

    #[test]
    fn merge_overwrites() {
        let mut a = Configuration::new().with_table(SwitchId(1), simple_table(2));
        let b = Configuration::new().with_table(SwitchId(1), simple_table(9));
        a.merge(&b);
        assert_eq!(a.table(SwitchId(1)), simple_table(9));
    }
}
