//! Prioritized forwarding rules.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::action::Action;
use crate::packet::{Packet, TrafficClass};
use crate::pattern::Pattern;
use crate::types::{PortId, Priority};

/// A forwarding rule `{pri; pat; acts}`.
///
/// The highest-priority rule whose pattern matches an incoming packet
/// determines how the packet is processed; rules with no `Forward` action drop
/// matching packets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rule {
    priority: Priority,
    pattern: Pattern,
    actions: Vec<Action>,
}

impl Rule {
    /// Creates a rule from its parts.
    pub fn new(priority: Priority, pattern: Pattern, actions: Vec<Action>) -> Self {
        Rule {
            priority,
            pattern,
            actions,
        }
    }

    /// A rule that explicitly drops packets matching `pattern`.
    pub fn drop(priority: Priority, pattern: Pattern) -> Self {
        Rule::new(priority, pattern, Vec::new())
    }

    /// The rule's priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The rule's match pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The rule's action list, in application order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Returns `true` if the rule matches `packet` arriving on `port`.
    pub fn matches(&self, packet: &Packet, port: PortId) -> bool {
        self.pattern.matches(packet, port)
    }

    /// Returns `true` if the rule could match some packet of `class`.
    pub fn overlaps_class(&self, class: &TrafficClass, port: Option<PortId>) -> bool {
        self.pattern.overlaps_class(class, port)
    }

    /// Applies the rule's actions to `packet`, producing the multiset of
    /// `(packet, out_port)` pairs emitted by the rule.
    ///
    /// Field modifications apply to all subsequent forwards, mirroring
    /// OpenFlow action-list semantics. A rule with no forward action produces
    /// the empty multiset (i.e. drops the packet).
    pub fn apply(&self, packet: &Packet) -> Vec<(Packet, PortId)> {
        let mut current = packet.clone();
        let mut out = Vec::new();
        for action in &self.actions {
            match action {
                Action::SetField(field, value) => current.set_field(*field, *value),
                Action::Forward(port) => out.push((current.clone(), *port)),
            }
        }
        out
    }

    /// Returns `true` if the rule drops all matching packets (has no forward).
    pub fn is_drop(&self) -> bool {
        !self.actions.iter().any(Action::is_forward)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} -> ", self.priority, self.pattern)?;
        if self.actions.is_empty() {
            write!(f, "drop")
        } else {
            let acts: Vec<String> = self.actions.iter().map(ToString::to_string).collect();
            write!(f, "{}", acts.join("; "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Field;

    #[test]
    fn apply_forwards_packet() {
        let rule = Rule::new(
            Priority(1),
            Pattern::any(),
            vec![Action::Forward(PortId(5))],
        );
        let pkt = Packet::new().with_field(Field::Dst, 3);
        let out = rule.apply(&pkt);
        assert_eq!(out, vec![(pkt, PortId(5))]);
    }

    #[test]
    fn apply_modification_before_forward() {
        let rule = Rule::new(
            Priority(1),
            Pattern::any(),
            vec![
                Action::SetField(Field::Tag, 2),
                Action::Forward(PortId(1)),
                Action::Forward(PortId(2)),
            ],
        );
        let out = rule.apply(&Packet::new());
        assert_eq!(out.len(), 2);
        for (pkt, _) in &out {
            assert_eq!(pkt.field(Field::Tag), Some(2));
        }
    }

    #[test]
    fn modification_after_forward_does_not_affect_earlier_output() {
        let rule = Rule::new(
            Priority(1),
            Pattern::any(),
            vec![
                Action::Forward(PortId(1)),
                Action::SetField(Field::Tag, 9),
                Action::Forward(PortId(2)),
            ],
        );
        let out = rule.apply(&Packet::new());
        assert_eq!(out[0].0.field(Field::Tag), None);
        assert_eq!(out[1].0.field(Field::Tag), Some(9));
    }

    #[test]
    fn drop_rule_emits_nothing() {
        let rule = Rule::drop(Priority(10), Pattern::any());
        assert!(rule.is_drop());
        assert!(rule.apply(&Packet::new()).is_empty());
    }

    #[test]
    fn display() {
        let rule = Rule::new(
            Priority(7),
            Pattern::any().with_field(Field::Dst, 3),
            vec![Action::Forward(PortId(2))],
        );
        assert_eq!(rule.to_string(), "[pri7] <dst=3> -> fwd p2");
        assert_eq!(
            Rule::drop(Priority(1), Pattern::any()).to_string(),
            "[pri1] <*> -> drop"
        );
    }
}
