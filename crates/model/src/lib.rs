//! # netupd-model
//!
//! The SDN network model underlying the network-update synthesizer.
//!
//! This crate implements the formal model of Section 3 of *Efficient Synthesis
//! of Network Updates* (PLDI 2015): packets with header fields, prioritized
//! forwarding rules and tables with their denotational semantics, switches,
//! links, hosts and topologies, the controller command language
//! (switch-granularity updates, `incr`, `flush`, and the derived `wait`), and
//! the full small-step operational semantics (rules IN, OUT, PROCESS, FORWARD,
//! UPDATE, INCR, FLUSH) as an executable discrete-event simulator.
//!
//! It also provides single-packet traces (Definition 1 of the paper),
//! loop-detection, trace equivalence of configurations, and the notion of
//! *stable* networks used in the definition of update correctness.
//!
//! # Quick example
//!
//! ```
//! use netupd_model::prelude::*;
//!
//! // A tiny topology: one host -> one switch -> one host.
//! let mut topo = Topology::new();
//! let h_in = topo.add_host();
//! let h_out = topo.add_host();
//! let sw = topo.add_switch();
//! topo.add_link(Endpoint::host(h_in), Endpoint::port(sw, PortId(1)));
//! topo.add_link(Endpoint::port(sw, PortId(2)), Endpoint::host(h_out));
//!
//! // Forward everything arriving on port 1 out of port 2.
//! let mut config = Configuration::new();
//! config.set_table(
//!     sw,
//!     Table::new(vec![Rule::new(
//!         Priority(10),
//!         Pattern::any().with_in_port(PortId(1)),
//!         vec![Action::Forward(PortId(2))],
//!     )]),
//! );
//!
//! let net = Network::new(topo, config);
//! let class = TrafficClass::new().with_field(Field::Dst, 7);
//! let traces = net.single_packet_traces(&class);
//! assert_eq!(traces.len(), 1);
//! assert!(traces[0].reaches_host(h_out));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod action;
pub mod command;
pub mod config;
pub mod error;
pub mod network;
pub mod packet;
pub mod pattern;
pub mod rule;
pub mod sim;
pub mod table;
pub mod topology;
pub mod trace;
pub mod types;

pub use action::Action;
pub use command::{Command, CommandSeq};
pub use config::Configuration;
pub use error::ModelError;
pub use network::Network;
pub use packet::{Field, Packet, TrafficClass};
pub use pattern::Pattern;
pub use rule::Rule;
pub use sim::{ProbeReport, SimEvent, Simulator, SimulatorOptions};
pub use table::Table;
pub use topology::{Endpoint, Link, LinkId, Topology};
pub use trace::{Observation, Trace};
pub use types::{Epoch, HostId, PortId, Priority, SwitchId};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::action::Action;
    pub use crate::command::{Command, CommandSeq};
    pub use crate::config::Configuration;
    pub use crate::error::ModelError;
    pub use crate::network::Network;
    pub use crate::packet::{Field, Packet, TrafficClass};
    pub use crate::pattern::Pattern;
    pub use crate::rule::Rule;
    pub use crate::sim::{ProbeReport, Simulator, SimulatorOptions};
    pub use crate::table::Table;
    pub use crate::topology::{Endpoint, Link, LinkId, Topology};
    pub use crate::trace::{Observation, Trace};
    pub use crate::types::{Epoch, HostId, PortId, Priority, SwitchId};
}
