//! Static networks: a topology paired with a configuration.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::config::Configuration;
use crate::packet::TrafficClass;
use crate::topology::{Endpoint, Topology};
use crate::trace::{Observation, Trace, TraceEnd};
use crate::types::{HostId, PortId, SwitchId};

/// A static network: a topology together with the forwarding tables currently
/// installed on its switches (and no pending controller commands).
///
/// Static networks are the objects the synthesizer reasons about: each
/// intermediate step of an update is a static network, and correctness of a
/// careful command sequence reduces to correctness of each static network it
/// induces (Lemma 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    topology: Arc<Topology>,
    config: Configuration,
}

impl Network {
    /// Creates a static network.
    ///
    /// The topology is shared (`Arc`); passing an owned [`Topology`] wraps it
    /// without copying, and the many intermediate networks an update induces
    /// all share one topology allocation.
    pub fn new(topology: impl Into<Arc<Topology>>, config: Configuration) -> Self {
        Network {
            topology: topology.into(),
            config,
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The installed configuration.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// The functional update `N[sw <- tbl]` (shares the topology).
    #[must_use]
    pub fn updated(&self, sw: SwitchId, table: crate::table::Table) -> Network {
        Network {
            topology: Arc::clone(&self.topology),
            config: self.config.updated(sw, table),
        }
    }

    /// Replaces the whole configuration, keeping (sharing) the topology.
    #[must_use]
    pub fn with_config(&self, config: Configuration) -> Network {
        Network {
            topology: Arc::clone(&self.topology),
            config,
        }
    }

    /// Enumerates all single-packet traces of packets in `class`
    /// (Definition 1): one trace per ingress link at which a packet of the
    /// class may enter the network.
    ///
    /// The representative packet of the class is followed hop by hop; the
    /// trace records every `(switch, port, packet)` observation until the
    /// packet exits at a host, is dropped, or revisits an observation
    /// (forwarding loop). Since the model checks properties per traffic class
    /// and rules may fan out (multicast), each ingress can yield several
    /// traces; all of them are returned.
    pub fn single_packet_traces(&self, class: &TrafficClass) -> Vec<Trace> {
        let mut traces = Vec::new();
        for (_, link) in self.topology.ingress_links() {
            if let Endpoint::SwitchPort(sw, pt) = link.dst {
                self.collect_traces_from(sw, pt, class, &mut traces);
            }
        }
        traces
    }

    /// Enumerates traces of `class` packets starting at a specific switch
    /// ingress point rather than at a host (unconstrained traces,
    /// Definition 8).
    pub fn traces_from(&self, sw: SwitchId, pt: PortId, class: &TrafficClass) -> Vec<Trace> {
        let mut traces = Vec::new();
        self.collect_traces_from(sw, pt, class, &mut traces);
        traces
    }

    fn collect_traces_from(
        &self,
        sw: SwitchId,
        pt: PortId,
        class: &TrafficClass,
        out: &mut Vec<Trace>,
    ) {
        let packet = class.representative();
        let mut path = Vec::new();
        let mut visited = BTreeSet::new();
        self.walk(sw, pt, &packet, &mut path, &mut visited, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        sw: SwitchId,
        pt: PortId,
        packet: &crate::packet::Packet,
        path: &mut Vec<Observation>,
        visited: &mut BTreeSet<Observation>,
        out: &mut Vec<Trace>,
    ) {
        let obs = Observation::new(sw, pt, packet.clone());
        if visited.contains(&obs) {
            out.push(Trace::new(path.clone(), TraceEnd::Loop));
            return;
        }
        visited.insert(obs.clone());
        path.push(obs.clone());

        let outputs = self.config.table(sw).process(packet, pt);
        if outputs.is_empty() {
            out.push(Trace::new(path.clone(), TraceEnd::Dropped));
        } else {
            for (next_packet, out_port) in outputs {
                match self.topology.link_from_port(sw, out_port) {
                    None => out.push(Trace::new(path.clone(), TraceEnd::Dropped)),
                    Some((_, link)) => match link.dst {
                        Endpoint::Host(h) => {
                            out.push(Trace::new(path.clone(), TraceEnd::Egress(h)))
                        }
                        Endpoint::SwitchPort(next_sw, next_pt) => {
                            self.walk(next_sw, next_pt, &next_packet, path, visited, out);
                        }
                    },
                }
            }
        }

        path.pop();
        visited.remove(&obs);
    }

    /// Returns `true` if the two networks are trace-equivalent for the given
    /// traffic classes (`N1 ≃ N2` in the paper): they generate exactly the
    /// same single-packet traces.
    pub fn trace_equivalent(&self, other: &Network, classes: &[TrafficClass]) -> bool {
        classes.iter().all(|class| {
            let mut a = self.single_packet_traces(class);
            let mut b = other.single_packet_traces(class);
            a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            a == b
        })
    }

    /// Returns `true` if some trace of `class` contains a forwarding loop.
    pub fn has_loop(&self, class: &TrafficClass) -> bool {
        self.single_packet_traces(class)
            .iter()
            .any(|t| t.has_loop())
    }

    /// Returns `true` if every trace of `class` reaches `host`.
    pub fn all_reach(&self, class: &TrafficClass, host: HostId) -> bool {
        let traces = self.single_packet_traces(class);
        !traces.is_empty() && traces.iter().all(|t| t.reaches_host(host))
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "network({}, {})", self.topology, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::packet::Field;
    use crate::pattern::Pattern;
    use crate::rule::Rule;
    use crate::table::Table;
    use crate::types::Priority;

    /// h0 -- s0 -- s1 -- h1, forwarding dst=1 from h0 to h1.
    fn line_network() -> (Network, HostId, HostId, SwitchId, SwitchId) {
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let s0 = topo.add_switch();
        let s1 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.add_duplex_link(s0, PortId(2), s1, PortId(1));
        topo.attach_host(h1, s1, PortId(2));

        let fwd = |port: u32| {
            Table::new(vec![Rule::new(
                Priority(1),
                Pattern::any().with_field(Field::Dst, 1),
                vec![Action::Forward(PortId(port))],
            )])
        };
        let config = Configuration::new()
            .with_table(s0, fwd(2))
            .with_table(s1, fwd(2));
        (Network::new(topo, config), h0, h1, s0, s1)
    }

    #[test]
    fn traces_reach_destination() {
        let (net, _h0, h1, s0, s1) = line_network();
        let class = TrafficClass::new().with_field(Field::Dst, 1);
        let traces = net.single_packet_traces(&class);
        // Packets may enter at either host's ingress link; the class is
        // destination-based so both ingresses produce traces.
        assert!(!traces.is_empty());
        let from_h0 = traces
            .iter()
            .find(|t| t.observations()[0].switch == s0)
            .expect("trace from h0 side");
        assert!(from_h0.reaches_host(h1));
        assert_eq!(from_h0.switch_path(), vec![s0, s1]);
    }

    #[test]
    fn unmatched_class_is_dropped() {
        let (net, ..) = line_network();
        let class = TrafficClass::new().with_field(Field::Dst, 99);
        let traces = net.single_packet_traces(&class);
        assert!(traces.iter().all(Trace::is_dropped));
    }

    #[test]
    fn loop_detection() {
        // s0 and s1 forward to each other forever.
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let s0 = topo.add_switch();
        let s1 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.add_duplex_link(s0, PortId(2), s1, PortId(1));
        let loop_rule = |port: u32| {
            Table::new(vec![Rule::new(
                Priority(1),
                Pattern::any(),
                vec![Action::Forward(PortId(port))],
            )])
        };
        let config = Configuration::new()
            .with_table(s0, loop_rule(2))
            .with_table(s1, loop_rule(1));
        let net = Network::new(topo, config);
        let class = TrafficClass::new();
        assert!(net.has_loop(&class));
    }

    #[test]
    fn trace_equivalence_of_identical_configs() {
        let (net, ..) = line_network();
        let class = TrafficClass::new().with_field(Field::Dst, 1);
        assert!(net.trace_equivalent(&net.clone(), &[class]));
    }

    #[test]
    fn trace_inequivalence_after_update() {
        let (net, _, _, s0, _) = line_network();
        let class = TrafficClass::new().with_field(Field::Dst, 1);
        let changed = net.updated(s0, Table::empty());
        assert!(!net.trace_equivalent(&changed, &[class]));
    }

    #[test]
    fn all_reach_requires_every_trace() {
        let (net, _h0, h1, _s0, _s1) = line_network();
        let class = TrafficClass::new().with_field(Field::Dst, 1);
        // Packets entering at h1's side also carry dst=1 and are forwarded
        // out of port 2 back toward h1, so every trace reaches h1.
        assert!(net.all_reach(&class, h1));
    }

    #[test]
    fn multicast_produces_multiple_traces() {
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let h2 = topo.add_host();
        let s0 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.attach_host(h1, s0, PortId(2));
        topo.attach_host(h2, s0, PortId(3));
        let table = Table::new(vec![Rule::new(
            Priority(1),
            Pattern::any().with_in_port(PortId(1)),
            vec![Action::Forward(PortId(2)), Action::Forward(PortId(3))],
        )]);
        let net = Network::new(topo, Configuration::new().with_table(s0, table));
        let traces = net.traces_from(s0, PortId(1), &TrafficClass::new());
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().any(|t| t.reaches_host(h1)));
        assert!(traces.iter().any(|t| t.reaches_host(h2)));
    }
}
