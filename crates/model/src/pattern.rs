//! Match patterns for forwarding rules.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::packet::{Field, Packet, TrafficClass};
use crate::types::PortId;

/// A pattern `{pt?; f1?; ..; fk?}`: an optional ingress port together with a
/// partial assignment of header fields.
///
/// A packet arriving on a port matches the pattern if the pattern's port (when
/// present) equals the arrival port and every constrained field of the pattern
/// equals the packet's value for that field.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Pattern {
    in_port: Option<PortId>,
    fields: BTreeMap<Field, u64>,
}

impl Pattern {
    /// The wildcard pattern that matches every packet on every port.
    pub fn any() -> Self {
        Pattern::default()
    }

    /// Builder-style constraint on the ingress port.
    #[must_use]
    pub fn with_in_port(mut self, port: PortId) -> Self {
        self.in_port = Some(port);
        self
    }

    /// Builder-style constraint on a header field.
    #[must_use]
    pub fn with_field(mut self, field: Field, value: u64) -> Self {
        self.fields.insert(field, value);
        self
    }

    /// Constructs a pattern matching exactly the packets of `class`
    /// (on any ingress port).
    pub fn from_class(class: &TrafficClass) -> Self {
        Pattern {
            in_port: None,
            fields: class.iter().collect(),
        }
    }

    /// The ingress-port constraint, if any.
    pub fn in_port(&self) -> Option<PortId> {
        self.in_port
    }

    /// The constrained value for `field`, if any.
    pub fn field(&self, field: Field) -> Option<u64> {
        self.fields.get(&field).copied()
    }

    /// Iterates over field constraints in a deterministic order.
    pub fn fields(&self) -> impl Iterator<Item = (Field, u64)> + '_ {
        self.fields.iter().map(|(f, v)| (*f, *v))
    }

    /// Number of field constraints (the ingress port does not count).
    pub fn num_field_constraints(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if this pattern places no constraints at all.
    pub fn is_wildcard(&self) -> bool {
        self.in_port.is_none() && self.fields.is_empty()
    }

    /// Returns `true` if `packet` arriving on `port` matches this pattern.
    pub fn matches(&self, packet: &Packet, port: PortId) -> bool {
        if let Some(p) = self.in_port {
            if p != port {
                return false;
            }
        }
        self.fields
            .iter()
            .all(|(f, v)| packet.field(*f) == Some(*v))
    }

    /// Returns `true` if this pattern can match *some* packet of `class`
    /// arriving on `port` (ignoring port if `port` is `None`).
    ///
    /// A pattern overlaps a class unless it constrains a field to a value that
    /// contradicts the class's constraint on the same field.
    pub fn overlaps_class(&self, class: &TrafficClass, port: Option<PortId>) -> bool {
        if let (Some(p), Some(q)) = (self.in_port, port) {
            if p != q {
                return false;
            }
        }
        self.fields.iter().all(|(f, v)| match class.field(*f) {
            Some(cv) => cv == *v,
            None => true,
        })
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        let mut first = true;
        if let Some(p) = self.in_port {
            write!(f, "in={p}")?;
            first = false;
        }
        for (field, value) in &self.fields {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{field}={value}")?;
            first = false;
        }
        if first {
            write!(f, "*")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_matches_everything() {
        let pat = Pattern::any();
        assert!(pat.is_wildcard());
        assert!(pat.matches(&Packet::new(), PortId(1)));
        assert!(pat.matches(&Packet::new().with_field(Field::Src, 9), PortId(2)));
    }

    #[test]
    fn port_constraint_respected() {
        let pat = Pattern::any().with_in_port(PortId(1));
        assert!(pat.matches(&Packet::new(), PortId(1)));
        assert!(!pat.matches(&Packet::new(), PortId(2)));
    }

    #[test]
    fn field_constraint_respected() {
        let pat = Pattern::any().with_field(Field::Dst, 3);
        let hit = Packet::new().with_field(Field::Dst, 3);
        let miss = Packet::new().with_field(Field::Dst, 4);
        let absent = Packet::new();
        assert!(pat.matches(&hit, PortId(0)));
        assert!(!pat.matches(&miss, PortId(0)));
        assert!(!pat.matches(&absent, PortId(0)));
    }

    #[test]
    fn from_class_matches_class_members() {
        let class = TrafficClass::flow(1, 3);
        let pat = Pattern::from_class(&class);
        assert!(pat.matches(&class.representative(), PortId(7)));
        assert!(!pat.matches(&Packet::new().with_field(Field::Src, 1), PortId(7)));
    }

    #[test]
    fn overlap_with_class() {
        let class = TrafficClass::flow(1, 3);
        let same = Pattern::any().with_field(Field::Dst, 3);
        let other = Pattern::any().with_field(Field::Dst, 4);
        let unconstrained = Pattern::any().with_field(Field::Typ, 5);
        assert!(same.overlaps_class(&class, None));
        assert!(!other.overlaps_class(&class, None));
        assert!(unconstrained.overlaps_class(&class, None));
    }

    #[test]
    fn overlap_respects_port() {
        let class = TrafficClass::flow(1, 3);
        let pat = Pattern::any().with_in_port(PortId(2));
        assert!(pat.overlaps_class(&class, Some(PortId(2))));
        assert!(!pat.overlaps_class(&class, Some(PortId(3))));
        assert!(pat.overlaps_class(&class, None));
    }

    #[test]
    fn display_format() {
        let pat = Pattern::any()
            .with_in_port(PortId(1))
            .with_field(Field::Dst, 3);
        assert_eq!(pat.to_string(), "<in=p1, dst=3>");
        assert_eq!(Pattern::any().to_string(), "<*>");
    }
}
