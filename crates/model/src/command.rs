//! Controller commands and command sequences.
//!
//! The control plane modifies the data plane through three primitive
//! commands: `(sw, tbl)` replaces the table of a single switch atomically,
//! `incr` increments the controller epoch, and `flush` blocks until every
//! packet stamped with an earlier epoch has left the network. The derived
//! command `wait` is `incr; flush`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::table::Table;
use crate::types::SwitchId;

/// A single controller command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Replace the forwarding table of a switch (switch-granularity update).
    Update(SwitchId, Table),
    /// Increment the controller epoch.
    Incr,
    /// Block until all packets from earlier epochs have exited the network.
    Flush,
}

impl Command {
    /// The switch affected by this command, if it is an update.
    pub fn updated_switch(&self) -> Option<SwitchId> {
        match self {
            Command::Update(sw, _) => Some(*sw),
            Command::Incr | Command::Flush => None,
        }
    }

    /// Returns `true` if this command is a switch update.
    pub fn is_update(&self) -> bool {
        matches!(self, Command::Update(..))
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Update(sw, tbl) => write!(f, "upd {sw} ({} rules)", tbl.len()),
            Command::Incr => write!(f, "incr"),
            Command::Flush => write!(f, "flush"),
        }
    }
}

/// A totally-ordered sequence of controller commands.
///
/// Provides the derived `wait` command and the *careful* predicate of
/// Definition 5: a sequence is careful if every pair of switch updates is
/// separated by a wait (an `incr` followed, possibly later, by a `flush`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommandSeq {
    commands: Vec<Command>,
}

impl CommandSeq {
    /// Creates an empty command sequence.
    pub fn new() -> Self {
        CommandSeq::default()
    }

    /// Creates a sequence from a vector of commands.
    pub fn from_commands(commands: Vec<Command>) -> Self {
        CommandSeq { commands }
    }

    /// Appends a command.
    pub fn push(&mut self, cmd: Command) {
        self.commands.push(cmd);
    }

    /// Appends a switch update.
    pub fn push_update(&mut self, sw: SwitchId, table: Table) {
        self.push(Command::Update(sw, table));
    }

    /// Appends the derived `wait` command (`incr; flush`).
    pub fn push_wait(&mut self) {
        self.push(Command::Incr);
        self.push(Command::Flush);
    }

    /// The commands, in execution order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands (counting `incr` and `flush` separately).
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Returns `true` if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Iterates over the commands.
    pub fn iter(&self) -> impl Iterator<Item = &Command> {
        self.commands.iter()
    }

    /// The switch updates contained in the sequence, in order.
    pub fn updates(&self) -> impl Iterator<Item = (SwitchId, &Table)> {
        self.commands.iter().filter_map(|c| match c {
            Command::Update(sw, tbl) => Some((*sw, tbl)),
            _ => None,
        })
    }

    /// Number of switch updates.
    pub fn num_updates(&self) -> usize {
        self.commands.iter().filter(|c| c.is_update()).count()
    }

    /// Number of waits, counted as the number of `incr`/`flush` pairs.
    ///
    /// A `wait` is an `incr` immediately or eventually followed by a `flush`;
    /// for the sequences this crate produces the two always appear adjacent,
    /// so we simply count `flush` commands.
    pub fn num_waits(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::Flush))
            .count()
    }

    /// Returns `true` if the sequence is *simple*: no switch is updated more
    /// than once.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.updates().all(|(sw, _)| seen.insert(sw))
    }

    /// Returns `true` if the sequence is *careful* (Definition 5): every pair
    /// of consecutive switch updates is separated by both an `incr` and a
    /// `flush`.
    pub fn is_careful(&self) -> bool {
        let mut saw_incr = true;
        let mut saw_flush = true;
        let mut first_update = true;
        for cmd in &self.commands {
            match cmd {
                Command::Update(..) => {
                    if !(first_update || (saw_incr && saw_flush)) {
                        return false;
                    }
                    first_update = false;
                    saw_incr = false;
                    saw_flush = false;
                }
                Command::Incr => saw_incr = true,
                Command::Flush => saw_flush = true,
            }
        }
        true
    }

    /// Removes trailing `incr`/`flush` commands that follow the last update;
    /// they have no effect on correctness.
    pub fn trim_trailing_waits(&mut self) {
        let last_update = self
            .commands
            .iter()
            .rposition(Command::is_update)
            .map_or(0, |i| i + 1);
        self.commands.truncate(last_update);
    }

    /// Concatenates two sequences.
    #[must_use]
    pub fn concat(mut self, other: CommandSeq) -> CommandSeq {
        self.commands.extend(other.commands);
        self
    }
}

impl fmt::Display for CommandSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.commands.iter().map(ToString::to_string).collect();
        write!(f, "[{}]", parts.join("; "))
    }
}

impl FromIterator<Command> for CommandSeq {
    fn from_iter<I: IntoIterator<Item = Command>>(iter: I) -> Self {
        CommandSeq::from_commands(iter.into_iter().collect())
    }
}

impl IntoIterator for CommandSeq {
    type Item = Command;
    type IntoIter = std::vec::IntoIter<Command>;

    fn into_iter(self) -> Self::IntoIter {
        self.commands.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(sw: u32) -> Command {
        Command::Update(SwitchId(sw), Table::empty())
    }

    #[test]
    fn careful_requires_wait_between_updates() {
        let careless = CommandSeq::from_commands(vec![upd(1), upd(2)]);
        assert!(!careless.is_careful());

        let mut careful = CommandSeq::new();
        careful.push(upd(1));
        careful.push_wait();
        careful.push(upd(2));
        assert!(careful.is_careful());
    }

    #[test]
    fn single_update_is_careful() {
        let seq = CommandSeq::from_commands(vec![upd(1)]);
        assert!(seq.is_careful());
        assert!(CommandSeq::new().is_careful());
    }

    #[test]
    fn incr_alone_is_not_a_wait() {
        let seq = CommandSeq::from_commands(vec![upd(1), Command::Incr, upd(2)]);
        assert!(!seq.is_careful());
        let seq = CommandSeq::from_commands(vec![upd(1), Command::Flush, upd(2)]);
        assert!(!seq.is_careful());
    }

    #[test]
    fn simple_detects_repeats() {
        let simple = CommandSeq::from_commands(vec![upd(1), upd(2)]);
        assert!(simple.is_simple());
        let repeat = CommandSeq::from_commands(vec![upd(1), upd(1)]);
        assert!(!repeat.is_simple());
    }

    #[test]
    fn counting() {
        let mut seq = CommandSeq::new();
        seq.push(upd(1));
        seq.push_wait();
        seq.push(upd(2));
        seq.push_wait();
        assert_eq!(seq.num_updates(), 2);
        assert_eq!(seq.num_waits(), 2);
        assert_eq!(seq.len(), 6);
    }

    #[test]
    fn trim_trailing_waits() {
        let mut seq = CommandSeq::new();
        seq.push(upd(1));
        seq.push_wait();
        seq.trim_trailing_waits();
        assert_eq!(seq.len(), 1);
        assert_eq!(seq.num_waits(), 0);
    }

    #[test]
    fn updates_iterator_preserves_order() {
        let mut seq = CommandSeq::new();
        seq.push(upd(5));
        seq.push_wait();
        seq.push(upd(3));
        let order: Vec<SwitchId> = seq.updates().map(|(sw, _)| sw).collect();
        assert_eq!(order, vec![SwitchId(5), SwitchId(3)]);
    }

    #[test]
    fn display_is_readable() {
        let mut seq = CommandSeq::new();
        seq.push(upd(1));
        seq.push_wait();
        assert_eq!(seq.to_string(), "[upd s1 (0 rules); incr; flush]");
    }
}
