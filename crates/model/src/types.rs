//! Newtype identifiers for switches, ports, hosts, priorities, and epochs.
//!
//! Every network element in the paper's model is identified by a natural
//! number; we wrap those numbers in distinct newtypes so that a switch
//! identifier can never be confused with a port or a host identifier.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a switch.
///
/// ```
/// use netupd_model::SwitchId;
/// let s = SwitchId(3);
/// assert_eq!(format!("{s}"), "s3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SwitchId(pub u32);

/// Identifier of a port on a switch.
///
/// Ports are only meaningful relative to a switch: `(SwitchId, PortId)` pairs
/// identify a physical attachment point.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PortId(pub u32);

/// Identifier of an end host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct HostId(pub u32);

/// Priority of a forwarding rule; higher priorities win.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Priority(pub u32);

/// Controller epoch used to reason about in-flight packets.
///
/// Packets are stamped with the epoch current at ingress; the `flush` command
/// blocks the controller until all packets from earlier epochs have left the
/// network.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The initial epoch.
    pub const ZERO: Epoch = Epoch(0);

    /// Returns the next epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pri{}", self.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

impl From<u32> for SwitchId {
    fn from(v: u32) -> Self {
        SwitchId(v)
    }
}

impl From<u32> for PortId {
    fn from(v: u32) -> Self {
        PortId(v)
    }
}

impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

impl From<u32> for Priority {
    fn from(v: u32) -> Self {
        Priority(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_next_increments() {
        assert_eq!(Epoch::ZERO.next(), Epoch(1));
        assert_eq!(Epoch(41).next(), Epoch(42));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SwitchId(1).to_string(), "s1");
        assert_eq!(PortId(2).to_string(), "p2");
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(Priority(4).to_string(), "pri4");
        assert_eq!(Epoch(5).to_string(), "ep5");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SwitchId(2) < SwitchId(10));
        assert!(Priority(1) < Priority(2));
        assert!(Epoch(0) < Epoch(1));
    }

    #[test]
    fn from_u32_conversions() {
        assert_eq!(SwitchId::from(7), SwitchId(7));
        assert_eq!(PortId::from(7), PortId(7));
        assert_eq!(HostId::from(7), HostId(7));
        assert_eq!(Priority::from(7), Priority(7));
    }
}
