//! Single-packet traces and observations (Definitions 1 and 8 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::packet::Packet;
use crate::types::{HostId, PortId, SwitchId};

/// An observation `(sw, pt, pkt)`: a packet being processed at a switch port.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Observation {
    /// The switch processing the packet.
    pub switch: SwitchId,
    /// The port on which the packet arrived.
    pub port: PortId,
    /// The packet being processed.
    pub packet: Packet,
}

impl Observation {
    /// Creates an observation.
    pub fn new(switch: SwitchId, port: PortId, packet: Packet) -> Self {
        Observation {
            switch,
            port,
            packet,
        }
    }
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.switch, self.port, self.packet)
    }
}

/// How a single-packet trace terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEnd {
    /// The packet exited the network at the given host (rule OUT).
    Egress(HostId),
    /// The packet was dropped: no rule matched, a drop rule matched, or the
    /// output port had no attached link.
    Dropped,
    /// The packet revisited a `(switch, port, packet)` observation — the
    /// configuration contains a forwarding loop for this packet.
    Loop,
}

/// A single-packet trace: the end-to-end path one packet takes through a
/// static network, plus how it terminated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    observations: Vec<Observation>,
    end: TraceEnd,
}

impl Trace {
    /// Creates a trace from its observations and terminal status.
    pub fn new(observations: Vec<Observation>, end: TraceEnd) -> Self {
        Trace { observations, end }
    }

    /// The observations, in order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// How the trace terminated.
    pub fn end(&self) -> TraceEnd {
        self.end
    }

    /// Number of observations (hops).
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` if the trace contains no observations.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Returns `true` if the packet exited the network at `host`.
    pub fn reaches_host(&self, host: HostId) -> bool {
        self.end == TraceEnd::Egress(host)
    }

    /// Returns `true` if the packet was dropped inside the network.
    pub fn is_dropped(&self) -> bool {
        self.end == TraceEnd::Dropped
    }

    /// Returns `true` if the trace revisits an observation (forwarding loop).
    pub fn has_loop(&self) -> bool {
        self.end == TraceEnd::Loop
    }

    /// Returns `true` if the trace visits `switch` at any hop.
    pub fn visits_switch(&self, switch: SwitchId) -> bool {
        self.observations.iter().any(|o| o.switch == switch)
    }

    /// The sequence of switches visited, in order (with repeats, if any).
    pub fn switch_path(&self) -> Vec<SwitchId> {
        self.observations.iter().map(|o| o.switch).collect()
    }

    /// Returns `true` if the trace is loop-free: no observation repeats.
    pub fn is_loop_free(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.observations.iter().all(|o| seen.insert(o.clone()))
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hops: Vec<String> = self
            .observations
            .iter()
            .map(|o| o.switch.to_string())
            .collect();
        let end = match self.end {
            TraceEnd::Egress(h) => format!("-> {h}"),
            TraceEnd::Dropped => "-> drop".to_string(),
            TraceEnd::Loop => "-> LOOP".to_string(),
        };
        write!(f, "{} {}", hops.join(" -> "), end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Field;

    fn obs(sw: u32, pt: u32) -> Observation {
        Observation::new(
            SwitchId(sw),
            PortId(pt),
            Packet::new().with_field(Field::Dst, 3),
        )
    }

    #[test]
    fn trace_end_queries() {
        let t = Trace::new(vec![obs(1, 1), obs(2, 1)], TraceEnd::Egress(HostId(3)));
        assert!(t.reaches_host(HostId(3)));
        assert!(!t.reaches_host(HostId(4)));
        assert!(!t.is_dropped());
        assert!(!t.has_loop());
    }

    #[test]
    fn trace_visits_switch() {
        let t = Trace::new(vec![obs(1, 1), obs(2, 1)], TraceEnd::Dropped);
        assert!(t.visits_switch(SwitchId(2)));
        assert!(!t.visits_switch(SwitchId(3)));
        assert_eq!(t.switch_path(), vec![SwitchId(1), SwitchId(2)]);
    }

    #[test]
    fn loop_free_detection() {
        let fine = Trace::new(vec![obs(1, 1), obs(2, 1)], TraceEnd::Egress(HostId(0)));
        assert!(fine.is_loop_free());
        let looping = Trace::new(vec![obs(1, 1), obs(2, 1), obs(1, 1)], TraceEnd::Loop);
        assert!(!looping.is_loop_free());
        assert!(looping.has_loop());
    }

    #[test]
    fn display() {
        let t = Trace::new(vec![obs(1, 1), obs(2, 1)], TraceEnd::Egress(HostId(3)));
        assert_eq!(t.to_string(), "s1 -> s2 -> h3");
        let d = Trace::new(vec![obs(1, 1)], TraceEnd::Dropped);
        assert_eq!(d.to_string(), "s1 -> drop");
    }
}
