//! Packets, header fields, and traffic classes.
//!
//! A packet is a record of header fields (source, destination, protocol type,
//! and an opaque tag used for e.g. two-phase version stamping). A *traffic
//! class* is a partial assignment of header fields identifying the set of
//! packets that agree on those fields; the Kripke encoding of a network keeps
//! one disjoint component per traffic class.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A packet header field.
///
/// The model uses a small, fixed set of fields; `Custom` leaves room for
/// application-specific headers (e.g. VLAN, MPLS labels) without changing the
/// crate's API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Field {
    /// Source address.
    Src,
    /// Destination address.
    Dst,
    /// Protocol type (e.g. 1 for ICMP-like probes).
    Typ,
    /// Version tag used by two-phase updates.
    Tag,
    /// An application-specific field.
    Custom(u8),
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Src => write!(f, "src"),
            Field::Dst => write!(f, "dst"),
            Field::Typ => write!(f, "typ"),
            Field::Tag => write!(f, "tag"),
            Field::Custom(n) => write!(f, "fld{n}"),
        }
    }
}

/// All standard fields, in a fixed order.
pub const STANDARD_FIELDS: [Field; 4] = [Field::Src, Field::Dst, Field::Typ, Field::Tag];

/// A concrete packet: a total assignment of values to the fields it carries.
///
/// Fields that are absent behave as "don't care" both when matching patterns
/// (an absent field only matches patterns that do not constrain it) and when
/// comparing packets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Packet {
    fields: BTreeMap<Field, u64>,
}

impl Packet {
    /// Creates an empty packet with no fields set.
    pub fn new() -> Self {
        Packet::default()
    }

    /// Builder-style setter for a field value.
    #[must_use]
    pub fn with_field(mut self, field: Field, value: u64) -> Self {
        self.fields.insert(field, value);
        self
    }

    /// Sets a field value in place (functional update `{r with f = v}` in the paper).
    pub fn set_field(&mut self, field: Field, value: u64) {
        self.fields.insert(field, value);
    }

    /// Returns the value of `field`, if the packet carries it.
    pub fn field(&self, field: Field) -> Option<u64> {
        self.fields.get(&field).copied()
    }

    /// Iterates over `(field, value)` pairs in a deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Field, u64)> + '_ {
        self.fields.iter().map(|(f, v)| (*f, *v))
    }

    /// Number of fields carried by this packet.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if the packet carries no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Returns `true` if this packet belongs to `class`, i.e. agrees with every
    /// field the class constrains.
    pub fn in_class(&self, class: &TrafficClass) -> bool {
        class
            .iter()
            .all(|(f, v)| self.field(f).is_some_and(|pv| pv == v))
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (field, value) in &self.fields {
            if !first {
                write!(f, "; ")?;
            }
            write!(f, "{field}={value}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Field, u64)> for Packet {
    fn from_iter<I: IntoIterator<Item = (Field, u64)>>(iter: I) -> Self {
        Packet {
            fields: iter.into_iter().collect(),
        }
    }
}

/// A traffic class: a partial assignment of header fields.
///
/// In the paper, traffic classes are elements of `2^AP` — sets of packets that
/// agree on the values of particular header fields. The network-to-Kripke
/// encoding builds one disjoint sub-structure per traffic class of interest.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TrafficClass {
    constraints: BTreeMap<Field, u64>,
}

impl TrafficClass {
    /// Creates the universal traffic class (matches every packet).
    pub fn new() -> Self {
        TrafficClass::default()
    }

    /// Convenience constructor for flows identified by source/destination.
    pub fn flow(src: u64, dst: u64) -> Self {
        TrafficClass::new()
            .with_field(Field::Src, src)
            .with_field(Field::Dst, dst)
    }

    /// Builder-style constraint on a field.
    #[must_use]
    pub fn with_field(mut self, field: Field, value: u64) -> Self {
        self.constraints.insert(field, value);
        self
    }

    /// Returns the constrained value for `field`, if any.
    pub fn field(&self, field: Field) -> Option<u64> {
        self.constraints.get(&field).copied()
    }

    /// Iterates over `(field, value)` constraints in a deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Field, u64)> + '_ {
        self.constraints.iter().map(|(f, v)| (*f, *v))
    }

    /// Number of constrained fields.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` if the class places no constraints (matches everything).
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// A representative concrete packet of this class.
    ///
    /// Unconstrained fields are simply absent from the representative; since
    /// the model does not rewrite packets across classes, the representative
    /// is sufficient for computing the class's forwarding behaviour.
    pub fn representative(&self) -> Packet {
        self.constraints
            .iter()
            .map(|(f, v)| (*f, *v))
            .collect::<Packet>()
    }

    /// Returns `true` if every packet of `other` is also in `self`.
    pub fn subsumes(&self, other: &TrafficClass) -> bool {
        self.constraints
            .iter()
            .all(|(f, v)| other.field(*f) == Some(*v))
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class[")?;
        let mut first = true;
        for (field, value) in &self.constraints {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{field}={value}")?;
            first = false;
        }
        write!(f, "]")
    }
}

impl FromIterator<(Field, u64)> for TrafficClass {
    fn from_iter<I: IntoIterator<Item = (Field, u64)>>(iter: I) -> Self {
        TrafficClass {
            constraints: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_field_roundtrip() {
        let pkt = Packet::new()
            .with_field(Field::Src, 1)
            .with_field(Field::Dst, 3);
        assert_eq!(pkt.field(Field::Src), Some(1));
        assert_eq!(pkt.field(Field::Dst), Some(3));
        assert_eq!(pkt.field(Field::Typ), None);
        assert_eq!(pkt.len(), 2);
    }

    #[test]
    fn packet_set_field_overwrites() {
        let mut pkt = Packet::new().with_field(Field::Tag, 0);
        pkt.set_field(Field::Tag, 1);
        assert_eq!(pkt.field(Field::Tag), Some(1));
        assert_eq!(pkt.len(), 1);
    }

    #[test]
    fn class_membership() {
        let class = TrafficClass::flow(1, 3);
        let in_pkt = Packet::new()
            .with_field(Field::Src, 1)
            .with_field(Field::Dst, 3)
            .with_field(Field::Typ, 6);
        let out_pkt = Packet::new()
            .with_field(Field::Src, 1)
            .with_field(Field::Dst, 4);
        assert!(in_pkt.in_class(&class));
        assert!(!out_pkt.in_class(&class));
    }

    #[test]
    fn representative_is_in_class() {
        let class = TrafficClass::flow(9, 12).with_field(Field::Typ, 1);
        assert!(class.representative().in_class(&class));
    }

    #[test]
    fn universal_class_matches_everything() {
        let class = TrafficClass::new();
        assert!(Packet::new().in_class(&class));
        assert!(Packet::new().with_field(Field::Src, 5).in_class(&class));
    }

    #[test]
    fn subsumption() {
        let broad = TrafficClass::new().with_field(Field::Dst, 3);
        let narrow = TrafficClass::flow(1, 3);
        assert!(broad.subsumes(&narrow));
        assert!(!narrow.subsumes(&broad));
    }

    #[test]
    fn display_formats() {
        let pkt = Packet::new().with_field(Field::Src, 1);
        assert_eq!(pkt.to_string(), "{src=1}");
        let class = TrafficClass::flow(1, 2);
        assert_eq!(class.to_string(), "class[src=1, dst=2]");
    }
}
