//! Property-based tests for the forwarding-table semantics and command
//! sequences.

use proptest::prelude::*;

use netupd_model::{
    Action, Command, CommandSeq, Field, Packet, Pattern, PortId, Priority, Rule, SwitchId, Table,
    TrafficClass,
};

fn arb_packet() -> impl Strategy<Value = Packet> {
    (0u64..4, 0u64..4, 0u64..2).prop_map(|(src, dst, typ)| {
        Packet::new()
            .with_field(Field::Src, src)
            .with_field(Field::Dst, dst)
            .with_field(Field::Typ, typ)
    })
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (
        proptest::option::of(0u64..4),
        proptest::option::of(0u64..4),
        proptest::option::of(0u32..3),
    )
        .prop_map(|(src, dst, port)| {
            let mut pattern = Pattern::any();
            if let Some(src) = src {
                pattern = pattern.with_field(Field::Src, src);
            }
            if let Some(dst) = dst {
                pattern = pattern.with_field(Field::Dst, dst);
            }
            if let Some(port) = port {
                pattern = pattern.with_in_port(PortId(port));
            }
            pattern
        })
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    (
        0u32..8,
        arb_pattern(),
        proptest::collection::vec(0u32..4, 0..3),
    )
        .prop_map(|(priority, pattern, ports)| {
            Rule::new(
                Priority(priority),
                pattern,
                ports
                    .into_iter()
                    .map(|p| Action::Forward(PortId(p)))
                    .collect(),
            )
        })
}

fn arb_table() -> impl Strategy<Value = Table> {
    // Deduplicate so that set-based properties (diff/roundtrip) are exact.
    proptest::collection::vec(arb_rule(), 0..8).prop_map(|mut rules| {
        rules.sort();
        rules.dedup();
        Table::new(rules)
    })
}

proptest! {
    /// The rule chosen by the table is always a highest-priority matching rule.
    #[test]
    fn matching_rule_has_maximal_priority(table in arb_table(), packet in arb_packet(), port in 0u32..3) {
        let port = PortId(port);
        if let Some(chosen) = table.matching_rule(&packet, port) {
            prop_assert!(chosen.matches(&packet, port));
            for rule in table.iter() {
                if rule.matches(&packet, port) {
                    prop_assert!(rule.priority() <= chosen.priority());
                }
            }
        } else {
            // No rule matched at all.
            prop_assert!(table.iter().all(|r| !r.matches(&packet, port)));
        }
    }

    /// Processing never invents output ports that the matched rule does not forward to.
    #[test]
    fn outputs_come_from_the_matched_rule(table in arb_table(), packet in arb_packet(), port in 0u32..3) {
        let port = PortId(port);
        let outputs = table.process(&packet, port);
        match table.matching_rule(&packet, port) {
            None => prop_assert!(outputs.is_empty()),
            Some(rule) => {
                let allowed: Vec<PortId> = rule
                    .actions()
                    .iter()
                    .filter_map(|a| a.forward_port())
                    .collect();
                prop_assert_eq!(outputs.len(), allowed.len());
                for (_, out_port) in outputs {
                    prop_assert!(allowed.contains(&out_port));
                }
            }
        }
    }

    /// Restricting a table to a class never changes the behaviour of packets in that class.
    #[test]
    fn restriction_preserves_class_behaviour(table in arb_table(), dst in 0u64..4, port in 0u32..3) {
        let class = TrafficClass::new().with_field(Field::Dst, dst);
        let packet = class.representative();
        let port = PortId(port);
        let restricted = table.restrict_to_class(&class);
        prop_assert_eq!(table.process(&packet, port), restricted.process(&packet, port));
    }

    /// Applying a table diff to the old table yields the new table (as a rule set).
    #[test]
    fn diff_roundtrips(old in arb_table(), new in arb_table()) {
        let (removed, added) = old.diff(&new);
        let mut patched = old.clone();
        for rule in &removed {
            patched.remove_rule(rule);
        }
        for rule in added {
            patched.add_rule(rule);
        }
        prop_assert!(patched.same_rules(&new));
    }

    /// A sequence of updates interleaved with waits is always careful and simple.
    #[test]
    fn generated_sequences_are_careful(switches in proptest::collection::btree_set(0u32..16, 1..6)) {
        let mut seq = CommandSeq::new();
        for (i, sw) in switches.iter().enumerate() {
            if i > 0 {
                seq.push_wait();
            }
            seq.push_update(SwitchId(*sw), Table::empty());
        }
        prop_assert!(seq.is_careful());
        prop_assert!(seq.is_simple());
        prop_assert_eq!(seq.num_updates(), switches.len());
        // Dropping all waits keeps it simple but (for >1 update) not careful.
        let without_waits: CommandSeq = seq
            .iter()
            .filter(|c| matches!(c, Command::Update(..)))
            .cloned()
            .collect();
        prop_assert!(without_waits.is_simple());
        if switches.len() > 1 {
            prop_assert!(!without_waits.is_careful());
        }
    }
}
