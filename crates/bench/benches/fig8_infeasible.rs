//! Figure 8(h): time to report that no switch-granularity update exists, on
//! the "double diamond" workloads (two flows swapping paths in opposite
//! directions).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netupd_bench::{
    double_diamond_workload, fmt_ms, print_header, print_row, time_synthesis, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::{Granularity, SynthesisError};
use netupd_topo::scenario::PropertyKind;

const SIZES: [usize; 3] = [20, 50, 100];

fn bench_infeasible(c: &mut Criterion) {
    print_header(
        "Figure 8(h): time to report 'impossible' at switch granularity",
        &["switches", "runtime", "outcome"],
    );
    let mut group = c.benchmark_group("fig8_infeasible");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for size in SIZES {
        let workload = double_diamond_workload(
            TopologyFamily::FatTree,
            size,
            PropertyKind::Reachability,
            17,
        );
        let single = time_synthesis(&workload.problem, Backend::Incremental, Granularity::Switch);
        let outcome = match &single.outcome {
            Ok(_) => "solved (unexpected)".to_string(),
            Err(SynthesisError::NoOrderingExists {
                proven_by_constraints,
            }) => format!(
                "impossible ({})",
                if *proven_by_constraints {
                    "by SAT constraints"
                } else {
                    "search exhausted"
                }
            ),
            Err(other) => format!("{other}"),
        };
        print_row(&[
            workload.switches.to_string(),
            fmt_ms(single.elapsed),
            outcome,
        ]);
        group.bench_with_input(
            BenchmarkId::from_parameter(size),
            &workload,
            |b, workload| {
                b.iter(|| {
                    time_synthesis(&workload.problem, Backend::Incremental, Granularity::Switch)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_infeasible);
criterion_main!(benches);
