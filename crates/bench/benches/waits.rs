//! §6 "Waits": wait-removal statistics — how many waits the fully careful
//! sequence contains, how many survive the reachability-based removal pass,
//! and how long the pass takes.

use std::time::Instant;

use netupd_bench::{fmt_ms, multi_diamond_workload, print_header, print_row, TopologyFamily};
use netupd_synth::wait_removal::remove_unnecessary_waits;
use netupd_synth::{SynthesisOptions, Synthesizer};
use netupd_topo::scenario::PropertyKind;

fn main() {
    print_header(
        "Wait removal statistics (Figure 8(g)-style workloads)",
        &[
            "property",
            "switches",
            "updates",
            "waits before",
            "waits after",
            "removed",
            "removal time",
        ],
    );
    for property in [
        PropertyKind::Reachability,
        PropertyKind::Waypoint,
        PropertyKind::ServiceChain { length: 3 },
    ] {
        for size in [50usize, 100, 200] {
            let workload = multi_diamond_workload(TopologyFamily::SmallWorld, size, property, 4, 7);
            // Synthesize the order without wait removal, then time the pass
            // separately so its cost is visible on its own.
            let result = Synthesizer::new(workload.problem.clone())
                .with_options(SynthesisOptions::default().wait_removal(false))
                .synthesize();
            let Ok(result) = result else {
                continue;
            };
            let waits_before = result.commands.num_waits();
            let start = Instant::now();
            let trimmed = remove_unnecessary_waits(&workload.problem, &result.order);
            let elapsed = start.elapsed();
            let waits_after = trimmed.num_waits();
            print_row(&[
                property.name().to_string(),
                workload.switches.to_string(),
                result.commands.num_updates().to_string(),
                waits_before.to_string(),
                waits_after.to_string(),
                format!("{}", waits_before.saturating_sub(waits_after)),
                fmt_ms(elapsed),
            ]);
        }
    }
}
