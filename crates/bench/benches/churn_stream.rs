//! Churn-stream serving throughput: requests/sec for a stream of related
//! update requests served by a fresh `Synthesizer` per request versus one
//! long-lived `UpdateEngine`, across backends and thread counts.
//!
//! This is the serving workload behind the engine (DESIGN.md §6): K
//! successive requests over one topology where each step perturbs the
//! previous final configuration. The fresh mode re-encodes, re-interns, and
//! re-labels everything per request; the reuse mode syncs persistent
//! structures by diff. The measured series (per-request mean over the
//! stream) lands in `BENCH_churn.json` alongside the fig7/fig8 reports.
//!
//! Unlike the figure benches this target drives its own timing loop (the
//! unit of measurement is a whole stream, not one call), so it does not use
//! the Criterion harness; `harness = false` hands it `main` directly.

use netupd_bench::{
    churn_stream_counters, churn_workload, fast_mode, fmt_min_mean_max, print_header, print_row,
    probe_search_mode, report_samples, sample_churn_stream, strategy_threads, BenchReport,
    StreamMode, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthesisOptions};
use netupd_topo::scenario::PropertyKind;

/// The `(family, size)` shapes measured.
const SHAPES: [(TopologyFamily, usize); 2] = [
    (TopologyFamily::FatTree, 20),
    (TopologyFamily::SmallWorld, 30),
];

/// Thread counts for the engine/synthesizer (the fresh-vs-reuse comparison
/// matters most at 1, and must hold under the parallel search too).
const THREADS: [usize; 2] = [1, 4];

/// Samples per series for the machine-readable report.
const REPORT_SAMPLES: usize = 5;

/// Requests per stream (halved in fast mode so CI stays quick).
fn stream_steps() -> usize {
    if fast_mode() {
        4
    } else {
        8
    }
}

fn main() {
    let steps = stream_steps();
    let samples_per_series = report_samples(REPORT_SAMPLES);
    print_header(
        "Churn stream: per-request time, fresh synthesizer vs engine reuse",
        &[
            "family",
            "switches",
            "backend",
            "strategy",
            "threads",
            "mode",
            "carry",
            "cegis",
            "mc calls",
            "[min mean max]",
            "req/s",
        ],
    );
    let mut report = BenchReport::new("churn");
    for (family, size) in SHAPES {
        let workload = churn_workload(family, size, PropertyKind::Reachability, steps, 42);
        for backend in Backend::ALL {
            for strategy in SearchStrategy::ALL {
                // DFS sweeps the full thread axis; the SAT-guided strategy
                // and the portfolio are measured at one thread (see
                // `strategy_threads`).
                let thread_axis: Vec<usize> = match strategy {
                    SearchStrategy::Dfs => THREADS.to_vec(),
                    _ => strategy_threads(strategy).to_vec(),
                };
                for threads in thread_axis {
                    let options = SynthesisOptions::with_backend(backend)
                        .strategy(strategy)
                        .threads(threads);
                    let search_mode = probe_search_mode(&workload.problems[0], &options);
                    for mode in StreamMode::ALL {
                        // Cross-request constraint carrying only exists for
                        // the SAT-guided strategy under engine reuse; that
                        // cell sweeps the carry axis (on = engine default)
                        // so the amortization it buys stays measured. Every
                        // other cell is carry-off by construction.
                        let carry_axis: &[&str] =
                            if strategy == SearchStrategy::SatGuided && mode == StreamMode::Reuse {
                                &["on", "off"]
                            } else {
                                &["off"]
                            };
                        for &carry in carry_axis {
                            let run_options = options.clone().carry_forward(carry == "on");
                            let counters = churn_stream_counters(&workload, &run_options, mode);
                            let samples = sample_churn_stream(
                                &workload,
                                &run_options,
                                mode,
                                samples_per_series,
                            );
                            let mean_s = samples.iter().map(|d| d.as_secs_f64()).sum::<f64>()
                                / samples.len() as f64;
                            let req_per_sec = if mean_s > 0.0 { 1.0 / mean_s } else { 0.0 };
                            print_row(&[
                                family.name().to_string(),
                                workload.switches.to_string(),
                                backend.to_string(),
                                strategy.to_string(),
                                threads.to_string(),
                                mode.name().to_string(),
                                carry.to_string(),
                                counters.cegis_iterations.to_string(),
                                counters.checker_calls.to_string(),
                                fmt_min_mean_max(&samples),
                                format!("{req_per_sec:.0}"),
                            ]);
                            // DFS keeps the pre-axis record ids so perf
                            // trajectories across PRs stay diffable, and the
                            // default configuration (carry on under reuse)
                            // keeps the pre-carry-axis ids for the same
                            // reason; only the carry-off contrast cell gets
                            // a new id segment.
                            let id = match strategy {
                                SearchStrategy::Dfs => format!(
                                    "churn/{}/{}/{}/t{}",
                                    family.name(),
                                    backend,
                                    mode.name(),
                                    threads
                                ),
                                SearchStrategy::SatGuided
                                    if mode == StreamMode::Reuse && carry == "off" =>
                                {
                                    format!(
                                        "churn/{}/{}/{}/{}/carry-off/t{}",
                                        family.name(),
                                        backend,
                                        strategy,
                                        mode.name(),
                                        threads
                                    )
                                }
                                _ => format!(
                                    "churn/{}/{}/{}/{}/t{}",
                                    family.name(),
                                    backend,
                                    strategy,
                                    mode.name(),
                                    threads
                                ),
                            };
                            report.record(
                                id,
                                &[
                                    ("family", family.name()),
                                    ("backend", &backend.to_string()),
                                    ("strategy", strategy.name()),
                                    ("mode", mode.name()),
                                    ("carry", carry),
                                    ("switches", &workload.switches.to_string()),
                                    ("steps", &steps.to_string()),
                                    ("threads", &threads.to_string()),
                                    ("search_mode", search_mode),
                                    ("cegis_iterations", &counters.cegis_iterations.to_string()),
                                    ("checker_calls", &counters.checker_calls.to_string()),
                                    (
                                        "constraints_carried",
                                        &counters.constraints_carried.to_string(),
                                    ),
                                    ("checkpoint_hits", &counters.checkpoint.hits.to_string()),
                                    (
                                        "checkpoint_restores",
                                        &counters.checkpoint.restores.to_string(),
                                    ),
                                    ("checkpoint_bytes", &counters.checkpoint.bytes.to_string()),
                                ],
                                &samples,
                            );
                        }
                    }
                }
            }
        }
    }
    report.write().expect("write BENCH_churn.json");
}
