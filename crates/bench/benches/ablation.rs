//! Ablation study: the contribution of each optimization the paper describes
//! (§4.2) — counterexample pruning, SAT-based early termination, and the
//! incremental checker itself — measured on the same workload, plus the
//! scheduler axis: the parallel DFS (work stealing, speculation, shared
//! pruning) and the DFS/SAT portfolio with its per-lane charged budgets.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use netupd_bench::{
    diamond_workload, double_diamond_workload, fmt_ms, infeasible_stats, print_header, print_row,
    time_synthesis_with, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthesisOptions};
use netupd_topo::scenario::PropertyKind;

fn configurations() -> Vec<(&'static str, SynthesisOptions)> {
    vec![
        ("all optimizations", SynthesisOptions::default()),
        (
            "no counterexample pruning",
            SynthesisOptions::default().counterexamples(false),
        ),
        (
            "no early termination",
            SynthesisOptions::default().early_termination(false),
        ),
        (
            "batch checker",
            SynthesisOptions::with_backend(Backend::Batch),
        ),
        (
            "sat-guided strategy",
            SynthesisOptions::default().strategy(SearchStrategy::SatGuided),
        ),
        ("parallel dfs (t4)", SynthesisOptions::default().threads(4)),
        (
            "portfolio strategy",
            SynthesisOptions::default().strategy(SearchStrategy::Portfolio),
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let feasible = diamond_workload(TopologyFamily::SmallWorld, 100, PropertyKind::Waypoint, 13);
    let infeasible =
        double_diamond_workload(TopologyFamily::FatTree, 50, PropertyKind::Reachability, 17);

    print_header(
        "Ablation: effect of each optimization",
        &[
            "workload",
            "configuration",
            "runtime",
            "mode",
            "mc calls",
            "charged",
            "states relabeled",
            "stolen",
            "spec issued/hit/wasted",
            "prune pub/consult",
            "sat conflicts/clauses/learnt/deleted",
            "sat restarts/decisions",
            "unsat core",
            "carried/retired",
            "cegis iters",
            "dfs/sat budget",
        ],
    );
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (workload_name, workload) in [
        ("feasible diamond", &feasible),
        ("infeasible double-diamond", &infeasible),
    ] {
        for (name, options) in configurations() {
            // Without counterexample pruning the search on an infeasible
            // instance degenerates to enumerating all orders; skip that
            // combination (the paper's tool always learns from
            // counterexamples when the backend provides them).
            if workload_name.starts_with("infeasible") && name == "no counterexample pruning" {
                continue;
            }
            let single = time_synthesis_with(&workload.problem, options.clone());
            // Infeasible runs return no stats through the `Result`; recover
            // them from the engine's explanation side channel so the counter
            // columns stay populated on the double-diamond rows (where the
            // unsat-core size is actually meaningful).
            let row_stats = match &single.outcome {
                Ok(stats) => Some(stats.clone()),
                Err(_) => infeasible_stats(&workload.problem, &options),
            };
            let (
                mode,
                calls,
                charged,
                relabeled,
                stolen,
                spec,
                prune,
                sat,
                restarts,
                core,
                carry,
                iters,
                budgets,
            ) = match &row_stats {
                Some(stats) => (
                    stats.search_mode.name().to_string(),
                    stats.model_checker_calls.to_string(),
                    stats.charged_calls.to_string(),
                    stats.states_relabeled.to_string(),
                    stats.tasks_stolen.to_string(),
                    format!(
                        "{}/{}/{}",
                        stats.speculative_issued, stats.speculative_hits, stats.speculative_wasted
                    ),
                    format!("{}/{}", stats.prune_publishes, stats.prune_consults),
                    format!(
                        "{}/{}/{}/{}",
                        stats.sat_conflicts,
                        stats.sat_clauses,
                        stats.sat_learnt,
                        stats.sat_learnt_deleted
                    ),
                    format!("{}/{}", stats.sat_restarts, stats.sat_decisions),
                    stats.unsat_core_size.to_string(),
                    format!(
                        "{}/{}",
                        stats.constraints_carried, stats.constraints_retired
                    ),
                    stats.cegis_iterations.to_string(),
                    format!(
                        "{}/{}",
                        stats.portfolio_dfs_budget, stats.portfolio_sat_budget
                    ),
                ),
                None => (
                    "-".to_string(),
                    "0".to_string(),
                    "0".to_string(),
                    "0".to_string(),
                    "0".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "0".to_string(),
                    "-".to_string(),
                ),
            };
            print_row(&[
                workload_name.to_string(),
                name.to_string(),
                fmt_ms(single.elapsed),
                mode,
                calls,
                charged,
                relabeled,
                stolen,
                spec,
                prune,
                sat,
                restarts,
                core,
                carry,
                iters,
                budgets,
            ]);
            group.bench_function(format!("{workload_name}/{name}"), |b| {
                b.iter(|| time_synthesis_with(&workload.problem, options.clone()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
