//! Ablation study: the contribution of each optimization the paper describes
//! (§4.2) — counterexample pruning, SAT-based early termination, and the
//! incremental checker itself — measured on the same workload.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use netupd_bench::{
    diamond_workload, double_diamond_workload, fmt_ms, print_header, print_row,
    time_synthesis_with, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthesisOptions};
use netupd_topo::scenario::PropertyKind;

fn configurations() -> Vec<(&'static str, SynthesisOptions)> {
    vec![
        ("all optimizations", SynthesisOptions::default()),
        (
            "no counterexample pruning",
            SynthesisOptions::default().counterexamples(false),
        ),
        (
            "no early termination",
            SynthesisOptions::default().early_termination(false),
        ),
        (
            "batch checker",
            SynthesisOptions::with_backend(Backend::Batch),
        ),
        (
            "sat-guided strategy",
            SynthesisOptions::default().strategy(SearchStrategy::SatGuided),
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let feasible = diamond_workload(TopologyFamily::SmallWorld, 100, PropertyKind::Waypoint, 13);
    let infeasible =
        double_diamond_workload(TopologyFamily::FatTree, 50, PropertyKind::Reachability, 17);

    print_header(
        "Ablation: effect of each optimization",
        &[
            "workload",
            "configuration",
            "runtime",
            "mc calls",
            "states relabeled",
            "sat conflicts/clauses/learnt",
            "cegis iters",
        ],
    );
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (workload_name, workload) in [
        ("feasible diamond", &feasible),
        ("infeasible double-diamond", &infeasible),
    ] {
        for (name, options) in configurations() {
            // Without counterexample pruning the search on an infeasible
            // instance degenerates to enumerating all orders; skip that
            // combination (the paper's tool always learns from
            // counterexamples when the backend provides them).
            if workload_name.starts_with("infeasible") && name == "no counterexample pruning" {
                continue;
            }
            let single = time_synthesis_with(&workload.problem, options.clone());
            let (calls, relabeled, sat, iters) = match &single.outcome {
                Ok(stats) => (
                    stats.model_checker_calls,
                    stats.states_relabeled,
                    format!(
                        "{}/{}/{}",
                        stats.sat_conflicts, stats.sat_clauses, stats.sat_learnt
                    ),
                    stats.cegis_iterations,
                ),
                Err(_) => (0, 0, "-".to_string(), 0),
            };
            print_row(&[
                workload_name.to_string(),
                name.to_string(),
                fmt_ms(single.elapsed),
                calls.to_string(),
                relabeled.to_string(),
                sat,
                iters.to_string(),
            ]);
            group.bench_function(format!("{workload_name}/{name}"), |b| {
                b.iter(|| time_synthesis_with(&workload.problem, options.clone()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
