//! Figure 2: probes received during an update (a) and per-switch rule
//! overhead (b), comparing the naïve update, the synthesized ordering update,
//! and the two-phase update on the paper's Figure 1 style datacenter
//! topology.

use netupd_bench::{diamond_workload, print_header, print_row, TopologyFamily};
use netupd_synth::baselines::{naive_update, ordering_rule_overhead, two_phase_update};
use netupd_synth::exec::{run_with_probes, ProbeExperiment};
use netupd_synth::Synthesizer;
use netupd_topo::scenario::PropertyKind;

fn main() {
    let workload = diamond_workload(TopologyFamily::FatTree, 20, PropertyKind::Reachability, 2);
    let problem = &workload.problem;

    let ordering = Synthesizer::new(problem.clone())
        .synthesize()
        .expect("ordering update exists");
    let naive = naive_update(problem);
    let two_phase = two_phase_update(problem);

    let experiment = ProbeExperiment::for_problem(problem);

    print_header(
        "Figure 2(a): probes received during the update",
        &[
            "update",
            "probes sent",
            "delivered",
            "dropped",
            "delivery ratio",
        ],
    );
    for (name, commands) in [
        ("naive", &naive),
        ("ordering (synthesized)", &ordering.commands),
        ("two-phase", &two_phase.commands),
    ] {
        let report = run_with_probes(problem, commands, &experiment).expect("simulation");
        print_row(&[
            name.to_string(),
            report.total_sent().to_string(),
            report.total_received().to_string(),
            report.total_dropped().to_string(),
            format!("{:.3}", report.delivery_ratio()),
        ]);
    }

    print_header(
        "Figure 2(b): per-switch rule overhead (peak rules, two-phase vs ordering)",
        &["switch", "ordering peak", "two-phase peak", "overhead"],
    );
    let ordering_rules = ordering_rule_overhead(problem);
    for (sw, ordering_peak) in &ordering_rules {
        let two_phase_peak = two_phase
            .max_rules_per_switch
            .get(sw)
            .copied()
            .unwrap_or(*ordering_peak);
        let overhead = if *ordering_peak == 0 {
            1.0
        } else {
            two_phase_peak as f64 / *ordering_peak as f64
        };
        print_row(&[
            sw.to_string(),
            ordering_peak.to_string(),
            two_phase_peak.to_string(),
            format!("{overhead:.1}x"),
        ]);
    }
}
