//! Figure 7(d–f): rule-granularity synthesis runtime with the Incremental
//! checker versus the header-space checker (NetPlumber stand-in), as the
//! number of rules grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netupd_bench::{
    fmt_ms, multi_diamond_workload, print_header, print_row, time_synthesis, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::Granularity;
use netupd_topo::scenario::PropertyKind;

const FLOWS: [usize; 3] = [1, 3, 6];
const BACKENDS: [Backend; 2] = [Backend::Incremental, Backend::HeaderSpace];

fn bench_rule_granularity(c: &mut Criterion) {
    print_header(
        "Figure 7(d-f): rule-granularity runtime, Incremental vs HeaderSpace",
        &["family", "rules", "backend", "runtime"],
    );
    for family in TopologyFamily::ALL {
        let mut group = c.benchmark_group(format!("fig7_rules/{}", family.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for flows in FLOWS {
            let workload =
                multi_diamond_workload(family, 40, PropertyKind::Reachability, flows, 11);
            for backend in BACKENDS {
                let single = time_synthesis(&workload.problem, backend, Granularity::Rule);
                print_row(&[
                    family.name().to_string(),
                    workload.rules.to_string(),
                    backend.to_string(),
                    fmt_ms(single.elapsed),
                ]);
                group.bench_with_input(
                    BenchmarkId::new(backend.to_string(), workload.rules),
                    &workload,
                    |b, workload| {
                        b.iter(|| time_synthesis(&workload.problem, backend, Granularity::Rule))
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_rule_granularity);
criterion_main!(benches);
