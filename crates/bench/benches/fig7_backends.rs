//! Figure 7(a–c): synthesis runtime with the Incremental checker versus the
//! monolithic product checker (NuSMV stand-in) and the Batch checker, on the
//! three topology families, for the reachability property.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netupd_bench::{
    diamond_workload, fmt_min_mean_max, print_header, print_row, sample_synthesis, time_synthesis,
    BenchReport, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::Granularity;
use netupd_topo::scenario::PropertyKind;

const SIZES: [usize; 3] = [20, 50, 100];
const BACKENDS: [Backend; 3] = [Backend::Incremental, Backend::Batch, Backend::Product];

/// Samples per series for the machine-readable report.
const REPORT_SAMPLES: usize = 5;

fn bench_backends(c: &mut Criterion) {
    print_header(
        "Figure 7(a-c): synthesis runtime by backend (reachability)",
        &["family", "switches", "backend", "[min mean max]"],
    );
    let mut report = BenchReport::new("fig7");
    for family in TopologyFamily::ALL {
        let mut group = c.benchmark_group(format!("fig7/{}", family.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for size in SIZES {
            let workload = diamond_workload(family, size, PropertyKind::Reachability, 42);
            for backend in BACKENDS {
                // The product checker is the slow monolithic baseline; keep
                // it to the smaller instances as the paper's timeout does.
                if backend == Backend::Product && size > 50 {
                    continue;
                }
                let samples = sample_synthesis(
                    &workload.problem,
                    backend,
                    Granularity::Switch,
                    REPORT_SAMPLES,
                );
                print_row(&[
                    family.name().to_string(),
                    workload.switches.to_string(),
                    backend.to_string(),
                    fmt_min_mean_max(&samples),
                ]);
                report.record(
                    format!("fig7/{}/{}/{}", family.name(), backend, size),
                    &[
                        ("family", family.name()),
                        ("backend", &backend.to_string()),
                        ("switches", &workload.switches.to_string()),
                        ("rules", &workload.rules.to_string()),
                    ],
                    &samples,
                );
                group.bench_with_input(
                    BenchmarkId::new(backend.to_string(), size),
                    &workload,
                    |b, workload| {
                        b.iter(|| time_synthesis(&workload.problem, backend, Granularity::Switch))
                    },
                );
            }
        }
        group.finish();
    }
    report.write().expect("write BENCH_fig7.json");
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
