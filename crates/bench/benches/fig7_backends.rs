//! Figure 7(a–c): synthesis runtime with the Incremental checker versus the
//! monolithic product checker (NuSMV stand-in) and the Batch checker, on the
//! three topology families, for the reachability property — swept across the
//! parallel-search thread axis (1/2/4 workers; 1 is the sequential search)
//! and the search-strategy axis (the DFS sweeps the thread axis; the
//! SAT-guided CEGIS strategy and the portfolio are measured at one thread,
//! where their fewer-model-checker-calls profiles show directly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netupd_bench::{
    criterion_budget, diamond_workload, fmt_min_mean_max, print_header, print_row, probe_run,
    report_samples, sample_synthesis_with, strategy_threads, BenchReport, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthesisOptions};
use netupd_topo::scenario::PropertyKind;

const SIZES: [usize; 3] = [20, 50, 100];
const BACKENDS: [Backend; 3] = [Backend::Incremental, Backend::Batch, Backend::Product];

/// Samples per series for the machine-readable report.
const REPORT_SAMPLES: usize = 5;

fn bench_backends(c: &mut Criterion) {
    print_header(
        "Figure 7(a-c): synthesis runtime by backend (reachability)",
        &[
            "family",
            "switches",
            "backend",
            "strategy",
            "threads",
            "[min mean max]",
        ],
    );
    let samples_per_series = report_samples(REPORT_SAMPLES);
    let (sample_size, warm_up, measurement) = criterion_budget();
    let mut report = BenchReport::new("fig7");
    for family in TopologyFamily::ALL {
        let mut group = c.benchmark_group(format!("fig7/{}", family.name()));
        group
            .sample_size(sample_size)
            .warm_up_time(warm_up)
            .measurement_time(measurement);
        for size in SIZES {
            let workload = diamond_workload(family, size, PropertyKind::Reachability, 42);
            for backend in BACKENDS {
                // The product checker is the slow monolithic baseline; keep
                // it to the smaller instances as the paper's timeout does.
                if backend == Backend::Product && size > 50 {
                    continue;
                }
                for strategy in SearchStrategy::ALL {
                    for &threads in strategy_threads(strategy) {
                        let options = SynthesisOptions::with_backend(backend)
                            .strategy(strategy)
                            .threads(threads);
                        let (search_mode, checkpoint) = probe_run(&workload.problem, &options);
                        let samples =
                            sample_synthesis_with(&workload.problem, &options, samples_per_series);
                        print_row(&[
                            family.name().to_string(),
                            workload.switches.to_string(),
                            backend.to_string(),
                            strategy.to_string(),
                            threads.to_string(),
                            fmt_min_mean_max(&samples),
                        ]);
                        // DFS at one thread keeps the pre-axis record ids so
                        // perf trajectories across PRs stay diffable; the
                        // other axes extend the id.
                        let id = match (strategy, threads) {
                            (SearchStrategy::Dfs, 1) => {
                                format!("fig7/{}/{}/{}", family.name(), backend, size)
                            }
                            (SearchStrategy::Dfs, _) => {
                                format!("fig7/{}/{}/{}/t{}", family.name(), backend, size, threads)
                            }
                            _ => {
                                format!("fig7/{}/{}/{}/{}", family.name(), backend, size, strategy)
                            }
                        };
                        report.record(
                            id,
                            &[
                                ("family", family.name()),
                                ("backend", &backend.to_string()),
                                ("strategy", strategy.name()),
                                ("switches", &workload.switches.to_string()),
                                ("rules", &workload.rules.to_string()),
                                ("threads", &threads.to_string()),
                                ("search_mode", search_mode),
                                ("checkpoint_hits", &checkpoint.hits.to_string()),
                                ("checkpoint_restores", &checkpoint.restores.to_string()),
                                ("checkpoint_bytes", &checkpoint.bytes.to_string()),
                            ],
                            &samples,
                        );
                        group.bench_with_input(
                            BenchmarkId::new(format!("{backend}/{strategy}/t{threads}"), size),
                            &workload,
                            |b, workload| {
                                b.iter(|| {
                                    netupd_bench::time_synthesis_with(
                                        &workload.problem,
                                        options.clone(),
                                    )
                                })
                            },
                        );
                    }
                }
            }
        }
        group.finish();
    }
    report.write().expect("write BENCH_fig7.json");
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
