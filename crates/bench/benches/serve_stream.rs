//! Multi-tenant serving throughput and latency: seeded many-tenant churn
//! driven through the `netupd-serve` worker fleet.
//!
//! Two sweeps land in `BENCH_serve.json`:
//!
//! * **matrix** — every backend × search strategy at a fixed small tenant
//!   count, isolating how the synthesis configuration moves serving
//!   throughput;
//! * **scale** — the tenant axis (10 / 100 / 1000 tenants) per strategy on
//!   the default backend, showing how req/s and p50/p99 behave as the pool
//!   saturates and (at 1000 tenants, with the bench's small per-shard cap)
//!   LRU eviction kicks in.
//!
//! Per record the report carries req/s plus nearest-rank p50/p99 for the
//! end-to-end latency (queue wait + service time) and its two components,
//! and the engine hit/miss/eviction counters. The series `[min mean max]`
//! is the per-request mean end-to-end latency of each run.
//!
//! Like `churn_stream`, this target drives its own timing loop (the unit of
//! measurement is a whole workload), so `harness = false`.

use std::time::Duration;

use netupd_bench::{
    fast_mode, fmt_min_mean_max, print_header, print_row, report_samples, run_serve_stream,
    serve_workload, BenchReport, CheckpointCounters, ServeRun, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_serve::{LatencySummary, ServeConfig};
use netupd_synth::{SearchStrategy, SynthesisOptions};
use netupd_topo::scenario::PropertyKind;

/// The tenant-count axis of the scale sweep.
const TENANT_AXIS: [usize; 3] = [10, 100, 1000];

/// Tenant count of the backend × strategy matrix sweep.
const MATRIX_TENANTS: usize = 10;

/// Samples (full workload runs) per series for the report.
const REPORT_SAMPLES: usize = 5;

/// Churn steps per tenant (shrunk in fast mode so CI stays quick).
fn stream_steps() -> usize {
    if fast_mode() {
        2
    } else {
        3
    }
}

/// Worker threads for the fleet (`NETUPD_SERVE_WORKERS` override).
fn worker_threads() -> usize {
    std::env::var("NETUPD_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(4)
}

/// The serving config under test: a small per-shard cap (8 shards × 16
/// engines = 128 resident) so the 1000-tenant sweep actually exercises LRU
/// eviction; queue limits are raised per-workload by `run_serve_stream`.
fn serve_config(options: SynthesisOptions, workers: usize) -> ServeConfig {
    ServeConfig::default()
        .options(options)
        .worker_threads(workers)
        .shards(8)
        .engines_per_shard(16)
}

/// Runs one configuration `samples` times and aggregates: per-run mean-e2e
/// series, pooled latency summaries, mean req/s, and summed engine counters.
struct SeriesResult {
    mean_e2e_per_run: Vec<Duration>,
    rps: f64,
    e2e: LatencySummary,
    wait: LatencySummary,
    service: LatencySummary,
    hits: usize,
    misses: usize,
    evicted: usize,
    checkpoint: CheckpointCounters,
}

fn run_series(
    workload: &netupd_bench::ServeWorkload,
    options: &SynthesisOptions,
    workers: usize,
    samples: usize,
) -> SeriesResult {
    let runs: Vec<ServeRun> = (0..samples.max(1))
        .map(|_| run_serve_stream(workload, serve_config(options.clone(), workers)))
        .collect();
    let mut e2e = Vec::new();
    let mut waits = Vec::new();
    let mut services = Vec::new();
    let (mut hits, mut misses, mut evicted) = (0, 0, 0);
    let mut checkpoint = CheckpointCounters::default();
    for run in &runs {
        e2e.extend_from_slice(&run.e2e);
        waits.extend_from_slice(&run.queue_waits);
        services.extend_from_slice(&run.service_times);
        hits += run.snapshot.engine_hits;
        misses += run.snapshot.engine_misses;
        evicted += run.snapshot.engines_evicted;
        checkpoint.hits += run.checkpoint.hits;
        checkpoint.restores += run.checkpoint.restores;
        checkpoint.bytes = checkpoint.bytes.max(run.checkpoint.bytes);
    }
    SeriesResult {
        mean_e2e_per_run: runs.iter().map(ServeRun::mean_e2e).collect(),
        rps: runs.iter().map(ServeRun::requests_per_sec).sum::<f64>() / runs.len() as f64,
        e2e: LatencySummary::from_samples(&e2e),
        wait: LatencySummary::from_samples(&waits),
        service: LatencySummary::from_samples(&services),
        hits,
        misses,
        evicted,
        checkpoint,
    }
}

fn ms(duration: Duration) -> String {
    format!("{:.4}", duration.as_secs_f64() * 1e3)
}

#[allow(clippy::too_many_arguments)]
fn record(
    report: &mut BenchReport,
    id: String,
    tenants: usize,
    steps: usize,
    workers: usize,
    backend: Backend,
    strategy: SearchStrategy,
    series: &SeriesResult,
) {
    print_row(&[
        id.clone(),
        tenants.to_string(),
        backend.to_string(),
        strategy.to_string(),
        format!("{:.0}", series.rps),
        ms(series.e2e.p50),
        ms(series.e2e.p99),
        fmt_min_mean_max(&series.mean_e2e_per_run),
    ]);
    report.record(
        id,
        &[
            ("tenants", &tenants.to_string()),
            ("backend", &backend.to_string()),
            ("strategy", strategy.name()),
            ("workers", &workers.to_string()),
            ("steps", &steps.to_string()),
            ("requests", &(tenants * steps).to_string()),
            ("rps", &format!("{:.4}", series.rps)),
            ("latency_p50_ms", &ms(series.e2e.p50)),
            ("latency_p99_ms", &ms(series.e2e.p99)),
            ("wait_p50_ms", &ms(series.wait.p50)),
            ("wait_p99_ms", &ms(series.wait.p99)),
            ("service_p50_ms", &ms(series.service.p50)),
            ("service_p99_ms", &ms(series.service.p99)),
            ("engine_hits", &series.hits.to_string()),
            ("engine_misses", &series.misses.to_string()),
            ("engines_evicted", &series.evicted.to_string()),
            ("checkpoint_hits", &series.checkpoint.hits.to_string()),
            (
                "checkpoint_restores",
                &series.checkpoint.restores.to_string(),
            ),
            ("checkpoint_bytes", &series.checkpoint.bytes.to_string()),
        ],
        &series.mean_e2e_per_run,
    );
}

fn main() {
    let steps = stream_steps();
    let workers = worker_threads();
    let samples = report_samples(REPORT_SAMPLES);
    let mut report = BenchReport::new("serve");
    print_header(
        "Multi-tenant serving: req/s and end-to-end latency",
        &[
            "id",
            "tenants",
            "backend",
            "strategy",
            "req/s",
            "p50 ms",
            "p99 ms",
            "mean-e2e [min mean max]",
        ],
    );

    // Matrix sweep: every backend × strategy at a fixed tenant count.
    let matrix_workload = serve_workload(
        TopologyFamily::FatTree,
        20,
        PropertyKind::Reachability,
        MATRIX_TENANTS,
        steps,
        42,
    );
    for backend in Backend::ALL {
        for strategy in SearchStrategy::ALL {
            let options = SynthesisOptions::with_backend(backend).strategy(strategy);
            let series = run_series(&matrix_workload, &options, workers, samples);
            record(
                &mut report,
                format!("serve/matrix/{backend}/{strategy}"),
                MATRIX_TENANTS,
                steps,
                workers,
                backend,
                strategy,
                &series,
            );
        }
    }

    // Scale sweep: the tenant axis per strategy on the default backend.
    for tenants in TENANT_AXIS {
        let workload = serve_workload(
            TopologyFamily::FatTree,
            20,
            PropertyKind::Reachability,
            tenants,
            steps,
            42,
        );
        for strategy in SearchStrategy::ALL {
            let options = SynthesisOptions::default().strategy(strategy);
            let series = run_series(&workload, &options, workers, samples);
            record(
                &mut report,
                format!("serve/scale/{tenants}/{strategy}"),
                tenants,
                steps,
                workers,
                Backend::Incremental,
                strategy,
                &series,
            );
        }
    }

    report.write().expect("write BENCH_serve.json");
}
