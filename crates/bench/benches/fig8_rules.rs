//! Figure 8(i): the same switch-impossible double-diamond instances are
//! solvable at rule granularity; this bench measures the rule-granularity
//! synthesis time as the instances grow.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netupd_bench::{
    double_diamond_workload, fmt_ms, print_header, print_row, time_synthesis, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::Granularity;
use netupd_topo::scenario::PropertyKind;

const SIZES: [usize; 3] = [20, 50, 100];

fn bench_rule_granularity_on_infeasible(c: &mut Criterion) {
    print_header(
        "Figure 8(i): rule-granularity synthesis on switch-impossible instances",
        &["switches", "rules", "runtime", "solved"],
    );
    let mut group = c.benchmark_group("fig8_rules");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for size in SIZES {
        let workload = double_diamond_workload(
            TopologyFamily::FatTree,
            size,
            PropertyKind::Reachability,
            17,
        );
        let single = time_synthesis(&workload.problem, Backend::Incremental, Granularity::Rule);
        print_row(&[
            workload.switches.to_string(),
            workload.rules.to_string(),
            fmt_ms(single.elapsed),
            single.succeeded().to_string(),
        ]);
        group.bench_with_input(
            BenchmarkId::from_parameter(size),
            &workload,
            |b, workload| {
                b.iter(|| {
                    time_synthesis(&workload.problem, Backend::Incremental, Granularity::Rule)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rule_granularity_on_infeasible);
criterion_main!(benches);
