//! Figure 8(g): scalability of the Incremental backend on Small-World
//! topologies of increasing size, for the three property families.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netupd_bench::{
    fmt_ms, multi_diamond_workload, print_header, print_row, time_synthesis, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::Granularity;
use netupd_topo::scenario::PropertyKind;

const SIZES: [usize; 3] = [50, 100, 200];
const PROPERTIES: [PropertyKind; 3] = [
    PropertyKind::Reachability,
    PropertyKind::Waypoint,
    PropertyKind::ServiceChain { length: 3 },
];

fn bench_scalability(c: &mut Criterion) {
    print_header(
        "Figure 8(g): Incremental scalability on Small-World topologies",
        &["property", "switches", "updating switches", "runtime"],
    );
    let mut group = c.benchmark_group("fig8_scalability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for property in PROPERTIES {
        for size in SIZES {
            let workload = multi_diamond_workload(TopologyFamily::SmallWorld, size, property, 4, 7);
            let single =
                time_synthesis(&workload.problem, Backend::Incremental, Granularity::Switch);
            print_row(&[
                property.name().to_string(),
                workload.switches.to_string(),
                workload.scenario.updating_switches().to_string(),
                fmt_ms(single.elapsed),
            ]);
            group.bench_with_input(
                BenchmarkId::new(property.name(), size),
                &workload,
                |b, workload| {
                    b.iter(|| {
                        time_synthesis(&workload.problem, Backend::Incremental, Granularity::Switch)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
