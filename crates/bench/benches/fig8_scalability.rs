//! Figure 8(g): scalability of the Incremental backend on Small-World
//! topologies of increasing size, for the three property families — swept
//! across the parallel-search thread axis (1/2/4 workers; 1 is the
//! sequential search) and the search-strategy axis (DFS, SAT-guided, and
//! the portfolio racing both).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netupd_bench::{
    criterion_budget, fmt_min_mean_max, multi_diamond_workload, print_header, print_row, probe_run,
    report_samples, sample_synthesis_with, strategy_threads, time_synthesis_with, BenchReport,
    TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthesisOptions};
use netupd_topo::scenario::PropertyKind;

const SIZES: [usize; 3] = [50, 100, 200];
const PROPERTIES: [PropertyKind; 3] = [
    PropertyKind::Reachability,
    PropertyKind::Waypoint,
    PropertyKind::ServiceChain { length: 3 },
];

/// Samples per series for the machine-readable report.
const REPORT_SAMPLES: usize = 5;

fn bench_scalability(c: &mut Criterion) {
    print_header(
        "Figure 8(g): Incremental scalability on Small-World topologies",
        &[
            "property",
            "switches",
            "updating switches",
            "strategy",
            "threads",
            "[min mean max]",
        ],
    );
    let samples_per_series = report_samples(REPORT_SAMPLES);
    let (sample_size, warm_up, measurement) = criterion_budget();
    let mut report = BenchReport::new("fig8");
    let mut group = c.benchmark_group("fig8_scalability");
    group
        .sample_size(sample_size)
        .warm_up_time(warm_up)
        .measurement_time(measurement);
    for property in PROPERTIES {
        for size in SIZES {
            let workload = multi_diamond_workload(TopologyFamily::SmallWorld, size, property, 4, 7);
            for strategy in SearchStrategy::ALL {
                for &threads in strategy_threads(strategy) {
                    let options = SynthesisOptions::with_backend(Backend::Incremental)
                        .strategy(strategy)
                        .threads(threads);
                    let (search_mode, checkpoint) = probe_run(&workload.problem, &options);
                    // The SAT-guided and portfolio rows are the figure's
                    // single-measurement strategies (one thread, no axis to
                    // average over), so even fast-mode runs keep at least 5
                    // samples — 2 proved too noisy to judge their means.
                    let strategy_samples = match strategy {
                        SearchStrategy::Dfs => samples_per_series,
                        _ => samples_per_series.max(5),
                    };
                    let samples =
                        sample_synthesis_with(&workload.problem, &options, strategy_samples);
                    print_row(&[
                        property.name().to_string(),
                        workload.switches.to_string(),
                        workload.scenario.updating_switches().to_string(),
                        strategy.to_string(),
                        threads.to_string(),
                        fmt_min_mean_max(&samples),
                    ]);
                    // DFS at one thread keeps the pre-axis record ids so perf
                    // trajectories across PRs stay diffable.
                    let id = match (strategy, threads) {
                        (SearchStrategy::Dfs, 1) => format!("fig8/{}/{}", property.name(), size),
                        (SearchStrategy::Dfs, _) => {
                            format!("fig8/{}/{}/t{}", property.name(), size, threads)
                        }
                        _ => format!("fig8/{}/{}/{}", property.name(), size, strategy),
                    };
                    report.record(
                        id,
                        &[
                            ("property", property.name()),
                            ("backend", "incremental"),
                            ("strategy", strategy.name()),
                            ("switches", &workload.switches.to_string()),
                            (
                                "updating_switches",
                                &workload.scenario.updating_switches().to_string(),
                            ),
                            ("threads", &threads.to_string()),
                            ("search_mode", search_mode),
                            ("checkpoint_hits", &checkpoint.hits.to_string()),
                            ("checkpoint_restores", &checkpoint.restores.to_string()),
                            ("checkpoint_bytes", &checkpoint.bytes.to_string()),
                        ],
                        &samples,
                    );
                    group.bench_with_input(
                        BenchmarkId::new(
                            format!("{}/{}/t{}", property.name(), strategy, threads),
                            size,
                        ),
                        &workload,
                        |b, workload| {
                            b.iter(|| time_synthesis_with(&workload.problem, options.clone()))
                        },
                    );
                }
            }
        }
    }
    group.finish();
    report.write().expect("write BENCH_fig8.json");
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
