//! Figure 8(g): scalability of the Incremental backend on Small-World
//! topologies of increasing size, for the three property families.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netupd_bench::{
    fmt_min_mean_max, multi_diamond_workload, print_header, print_row, sample_synthesis,
    time_synthesis, BenchReport, TopologyFamily,
};
use netupd_mc::Backend;
use netupd_synth::Granularity;
use netupd_topo::scenario::PropertyKind;

const SIZES: [usize; 3] = [50, 100, 200];
const PROPERTIES: [PropertyKind; 3] = [
    PropertyKind::Reachability,
    PropertyKind::Waypoint,
    PropertyKind::ServiceChain { length: 3 },
];

/// Samples per series for the machine-readable report.
const REPORT_SAMPLES: usize = 5;

fn bench_scalability(c: &mut Criterion) {
    print_header(
        "Figure 8(g): Incremental scalability on Small-World topologies",
        &[
            "property",
            "switches",
            "updating switches",
            "[min mean max]",
        ],
    );
    let mut report = BenchReport::new("fig8");
    let mut group = c.benchmark_group("fig8_scalability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for property in PROPERTIES {
        for size in SIZES {
            let workload = multi_diamond_workload(TopologyFamily::SmallWorld, size, property, 4, 7);
            let samples = sample_synthesis(
                &workload.problem,
                Backend::Incremental,
                Granularity::Switch,
                REPORT_SAMPLES,
            );
            print_row(&[
                property.name().to_string(),
                workload.switches.to_string(),
                workload.scenario.updating_switches().to_string(),
                fmt_min_mean_max(&samples),
            ]);
            report.record(
                format!("fig8/{}/{}", property.name(), size),
                &[
                    ("property", property.name()),
                    ("backend", "incremental"),
                    ("switches", &workload.switches.to_string()),
                    (
                        "updating_switches",
                        &workload.scenario.updating_switches().to_string(),
                    ),
                ],
                &samples,
            );
            group.bench_with_input(
                BenchmarkId::new(property.name(), size),
                &workload,
                |b, workload| {
                    b.iter(|| {
                        time_synthesis(&workload.problem, Backend::Incremental, Granularity::Switch)
                    })
                },
            );
        }
    }
    group.finish();
    report.write().expect("write BENCH_fig8.json");
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
