//! One-shot harness for the EXPERIMENTS.md PR 7 tables (not a bench target).

use netupd_bench::{diamond_workload, multi_diamond_workload, time_synthesis_with, TopologyFamily};
use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthesisOptions, UpdateProblem};
use netupd_topo::scenario::PropertyKind;

fn shapes() -> Vec<(String, UpdateProblem)> {
    let mut out = Vec::new();
    for family in TopologyFamily::ALL {
        for size in [20usize, 100] {
            let w = diamond_workload(family, size, PropertyKind::Reachability, 42);
            out.push((format!("fig7/{}/{}", family.name(), size), w.problem));
        }
    }
    for (property, sizes) in [
        (PropertyKind::Reachability, [50usize, 200]),
        (PropertyKind::Waypoint, [100, 200]),
        (PropertyKind::ServiceChain { length: 3 }, [100, 200]),
    ] {
        for size in sizes {
            let w = multi_diamond_workload(TopologyFamily::SmallWorld, size, property, 4, 7);
            out.push((format!("fig8/{}/{}", property.name(), size), w.problem));
        }
    }
    out
}

fn main() {
    println!("== strategy table (Incremental, threads 1) ==");
    println!("shape | dfs charged | sat charged | portfolio charged | portfolio real | dfs ms | sat ms | portfolio ms");
    for (name, problem) in shapes() {
        let mut row = name;
        let mut charges = Vec::new();
        let mut times = Vec::new();
        let mut real = 0usize;
        for strategy in SearchStrategy::ALL {
            let options = SynthesisOptions::with_backend(Backend::Incremental).strategy(strategy);
            let timed = time_synthesis_with(&problem, options);
            let stats = timed.outcome.as_ref().expect("feasible shape");
            charges.push(stats.charged_calls);
            times.push(timed.elapsed.as_secs_f64() * 1e3);
            if strategy == SearchStrategy::Portfolio {
                real = stats.model_checker_calls;
            }
        }
        row.push_str(&format!(
            " | {} | {} | {} | {real} | {:.2} | {:.2} | {:.2}",
            charges[0], charges[1], charges[2], times[0], times[1], times[2]
        ));
        let ok = charges[2] <= charges[0].min(charges[1]);
        println!("{row}{}", if ok { "" } else { "  <-- VIOLATION" });
    }

    println!();
    println!("== fig8 threads axis (Incremental, DFS, mean of 10 after 2 warmups) ==");
    println!("shape | t1 ms (calls/mode) | t2 ms (calls/mode) | t4 ms (calls/mode)");
    for (property, size) in [
        (PropertyKind::Reachability, 200usize),
        (PropertyKind::Waypoint, 200),
        (PropertyKind::ServiceChain { length: 3 }, 200),
    ] {
        let w = multi_diamond_workload(TopologyFamily::SmallWorld, size, property, 4, 7);
        let mut row = format!("fig8/{}/{}", property.name(), size);
        for threads in [1usize, 2, 4] {
            let options = SynthesisOptions::with_backend(Backend::Incremental).threads(threads);
            let mut calls = 0;
            let mut mode = "?".to_string();
            for _ in 0..2 {
                let t = time_synthesis_with(&w.problem, options.clone());
                let stats = t.outcome.as_ref().expect("feasible");
                calls = stats.model_checker_calls;
                mode = stats.search_mode.name().to_string();
            }
            let mut total = 0.0;
            for _ in 0..10 {
                total += time_synthesis_with(&w.problem, options.clone())
                    .elapsed
                    .as_secs_f64();
            }
            row.push_str(&format!(" | {:.2} ({calls}/{mode})", total / 10.0 * 1e3));
        }
        println!("{row}");
    }
}
