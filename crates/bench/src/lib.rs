//! # netupd-bench
//!
//! Shared harness code for the benchmarks that reproduce the evaluation
//! section of *Efficient Synthesis of Network Updates* (PLDI 2015).
//!
//! Each Criterion bench target under `benches/` regenerates one table or
//! figure of the paper (see `DESIGN.md` for the full index) and, in addition
//! to the Criterion timing data, prints the measured series in a compact
//! textual table so the shape of the result can be compared against the
//! paper directly. `EXPERIMENTS.md` records that comparison.
//!
//! The helpers here generate deterministic workloads (seeded RNG) so that
//! every run of the harness measures the same instances.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;

pub use report::{fmt_min_mean_max, BenchRecord, BenchReport};

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use netupd_mc::Backend;
use netupd_serve::{MetricsSnapshot, ServeConfig, TenantId, UpdateServer};
use netupd_synth::{
    Granularity, SynthStats, SynthesisError, SynthesisOptions, Synthesizer, UpdateEngine,
    UpdateProblem,
};
use netupd_topo::scenario::{
    churn_scenarios, diamond_scenario, double_diamond_scenario, multi_diamond_scenario,
    multi_tenant_churn_streams, PropertyKind,
};
use netupd_topo::{generators, NetworkGraph, UpdateScenario};

/// The thread counts the scaling benchmarks sweep (the parallel-search axis
/// of Figures 7 and 8).
pub const THREAD_AXIS: [usize; 3] = [1, 2, 4];

/// The thread counts swept for a search strategy: the DFS takes the full
/// [`THREAD_AXIS`]; the SAT-guided strategy is measured at one thread, where
/// its fewer-model-checker-calls profile shows directly (its parallel
/// candidate verification is covered by the determinism suites); the
/// portfolio's lockstep race runs on the calling thread by design (its
/// result is thread-count-independent), so one thread measures it fully.
pub fn strategy_threads(strategy: netupd_synth::SearchStrategy) -> &'static [usize] {
    match strategy {
        netupd_synth::SearchStrategy::Dfs => &THREAD_AXIS,
        netupd_synth::SearchStrategy::SatGuided => &[1],
        netupd_synth::SearchStrategy::Portfolio => &[1],
    }
}

/// Returns `true` when `NETUPD_BENCH_FAST` is set (to anything but `0`):
/// the benches then use reduced sample counts and measurement budgets so the
/// CI `bench-smoke` job finishes quickly while still producing complete
/// `BENCH_*.json` reports.
pub fn fast_mode() -> bool {
    std::env::var("NETUPD_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// Number of samples for the machine-readable report series: 2 in
/// [`fast_mode`] (CI smoke), otherwise the `NETUPD_BENCH_SAMPLES`
/// environment override or `default` raised to at least 5 — two samples
/// proved too noisy to judge thread scaling, so the figure benches always
/// collect enough for a stable mean.
pub fn report_samples(default: usize) -> usize {
    if fast_mode() {
        return 2;
    }
    if let Some(samples) = std::env::var("NETUPD_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
    {
        return samples;
    }
    default.max(5)
}

/// Criterion sampling settings `(sample_size, warm_up, measurement)` for the
/// figure benches, shrunk in [`fast_mode`].
pub fn criterion_budget() -> (usize, Duration, Duration) {
    if fast_mode() {
        (2, Duration::from_millis(20), Duration::from_millis(100))
    } else {
        (10, Duration::from_millis(200), Duration::from_millis(800))
    }
}

/// The topology families used across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyFamily {
    /// Synthetic wide-area topologies (Topology Zoo stand-in).
    Wan,
    /// k-ary FatTree datacenter topologies.
    FatTree,
    /// Watts–Strogatz Small-World topologies.
    SmallWorld,
}

impl TopologyFamily {
    /// All families, in the order the paper's Figure 7 columns use.
    pub const ALL: [TopologyFamily; 3] = [
        TopologyFamily::Wan,
        TopologyFamily::FatTree,
        TopologyFamily::SmallWorld,
    ];

    /// A short display name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyFamily::Wan => "wan-zoo",
            TopologyFamily::FatTree => "fat-tree",
            TopologyFamily::SmallWorld => "small-world",
        }
    }

    /// Generates a topology of roughly `size` switches from this family.
    pub fn generate(self, size: usize, seed: u64) -> NetworkGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            TopologyFamily::Wan => generators::waxman(size.max(4), 0.4, 0.15, &mut rng),
            TopologyFamily::FatTree => {
                // Choose the smallest even arity whose fat-tree has at least
                // `size` switches: 5k^2/4 switches for arity k.
                let mut k = 2;
                while 5 * k * k / 4 < size {
                    k += 2;
                }
                generators::fat_tree(k)
            }
            TopologyFamily::SmallWorld => generators::small_world(size.max(4), 4, 0.1, &mut rng),
        }
    }
}

/// A generated workload instance for one data point.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The scenario (topology + configurations + specification).
    pub scenario: UpdateScenario,
    /// The synthesis problem derived from the scenario.
    pub problem: UpdateProblem,
    /// Number of switches in the topology.
    pub switches: usize,
    /// Number of rules across initial and final configurations.
    pub rules: usize,
}

/// Generates a single-flow diamond workload.
pub fn diamond_workload(
    family: TopologyFamily,
    size: usize,
    kind: PropertyKind,
    seed: u64,
) -> Workload {
    let graph = family.generate(size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let scenario = diamond_scenario(&graph, kind, &mut rng)
        .or_else(|| {
            let mut retry = StdRng::seed_from_u64(seed.wrapping_add(1));
            diamond_scenario(&graph, kind, &mut retry)
        })
        .expect("generated topologies admit a diamond");
    let problem = UpdateProblem::from_scenario(&scenario);
    Workload {
        switches: graph.num_switches(),
        rules: scenario.total_rules(),
        problem,
        scenario,
    }
}

/// Generates a workload with several diamonds so that many switches update,
/// the knob used by the scalability experiments (Figure 8(g)).
pub fn multi_diamond_workload(
    family: TopologyFamily,
    size: usize,
    kind: PropertyKind,
    flows: usize,
    seed: u64,
) -> Workload {
    let graph = family.generate(size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let scenario = multi_diamond_scenario(&graph, kind, flows, &mut rng)
        .expect("generated topologies admit diamonds");
    let problem = UpdateProblem::from_scenario(&scenario);
    Workload {
        switches: graph.num_switches(),
        rules: scenario.total_rules(),
        problem,
        scenario,
    }
}

/// Generates the double-diamond (infeasible at switch granularity) workload
/// used by Figure 8(h)/(i).
pub fn double_diamond_workload(
    family: TopologyFamily,
    size: usize,
    kind: PropertyKind,
    seed: u64,
) -> Workload {
    let graph = family.generate(size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
    let scenario = double_diamond_scenario(&graph, kind, &mut rng)
        .expect("generated topologies admit a double diamond");
    let problem = UpdateProblem::from_scenario(&scenario);
    Workload {
        switches: graph.num_switches(),
        rules: scenario.total_rules(),
        problem,
        scenario,
    }
}

/// A generated churn-stream workload: `steps` successive problems over one
/// shared topology, each starting exactly where the previous one ended (see
/// [`churn_scenarios`]).
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    /// The per-step synthesis problems, all sharing one topology `Arc`.
    pub problems: Vec<UpdateProblem>,
    /// Number of switches in the topology.
    pub switches: usize,
}

/// Generates a seeded churn-stream workload on a topology of roughly `size`
/// switches.
pub fn churn_workload(
    family: TopologyFamily,
    size: usize,
    kind: PropertyKind,
    steps: usize,
    seed: u64,
) -> ChurnWorkload {
    let graph = family.generate(size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7);
    let scenarios = churn_scenarios(&graph, kind, steps, &mut rng)
        .or_else(|| {
            let mut retry = StdRng::seed_from_u64(seed.wrapping_add(1));
            churn_scenarios(&graph, kind, steps, &mut retry)
        })
        .expect("generated topologies admit a churn stream");
    let topology = Arc::new(graph.topology().clone());
    ChurnWorkload {
        problems: scenarios
            .iter()
            .map(|s| UpdateProblem::from_scenario_shared(s, Arc::clone(&topology)))
            .collect(),
        switches: graph.num_switches(),
    }
}

/// How a churn stream is served, for the fresh-vs-reuse comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// A fresh [`Synthesizer`] per request (everything rebuilt per call).
    Fresh,
    /// One long-lived [`UpdateEngine`] across the stream.
    Reuse,
}

impl StreamMode {
    /// Both modes, fresh first.
    pub const ALL: [StreamMode; 2] = [StreamMode::Fresh, StreamMode::Reuse];

    /// The identifier used in tables and report ids.
    pub fn name(self) -> &'static str {
        match self {
            StreamMode::Fresh => "fresh",
            StreamMode::Reuse => "reuse",
        }
    }
}

/// Serves the whole churn stream once in the given mode and returns the
/// total wall-clock time. Panics if any request fails — churn streams are
/// solvable by construction.
pub fn time_churn_stream(
    workload: &ChurnWorkload,
    options: &SynthesisOptions,
    mode: StreamMode,
) -> Duration {
    let start = Instant::now();
    match mode {
        StreamMode::Fresh => {
            for problem in &workload.problems {
                Synthesizer::new(problem.clone())
                    .with_options(options.clone())
                    .synthesize()
                    .expect("churn steps are solvable");
            }
        }
        StreamMode::Reuse => {
            let mut engine = UpdateEngine::for_problem(&workload.problems[0], options.clone());
            for problem in &workload.problems {
                engine.solve(problem).expect("churn steps are solvable");
            }
        }
    }
    start.elapsed()
}

/// Serves the stream `runs` times and returns the *per-request mean*
/// duration of each run — the series the churn bench reports.
pub fn sample_churn_stream(
    workload: &ChurnWorkload,
    options: &SynthesisOptions,
    mode: StreamMode,
    runs: usize,
) -> Vec<Duration> {
    let requests = workload.problems.len().max(1) as u32;
    (0..runs.max(1))
        .map(|_| time_churn_stream(workload, options, mode) / requests)
        .collect()
}

/// Prefix-checkpoint cache counters of a run (or a stream of runs) —
/// attached to every bench record so the cache's effect on synthesis work
/// stays diffable across PRs alongside the wall-clock numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointCounters {
    /// Checkpoint-cache hits (verdicts reused without a checker call).
    pub hits: usize,
    /// Hits that also restored a checker snapshot instead of replaying the
    /// configuration change set.
    pub restores: usize,
    /// Resident cache bytes; for a stream, the largest value any request
    /// reported.
    pub bytes: usize,
}

impl CheckpointCounters {
    /// Folds one request's [`SynthStats`] into the aggregate: hits and
    /// restores accumulate, bytes keeps the high-water mark.
    pub fn absorb(&mut self, stats: &SynthStats) {
        self.hits += stats.checkpoint_hits;
        self.restores += stats.checkpoint_restores;
        self.bytes = self.bytes.max(stats.checkpoint_bytes);
    }
}

/// Deterministic work counters of serving a whole churn stream once —
/// attached to the churn bench records so synthesis *effort* (not just
/// wall-clock) stays diffable across PRs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnCounters {
    /// Total CEGIS propose→verify→learn iterations across the stream
    /// (SAT-guided rows; 0 for the DFS).
    pub cegis_iterations: usize,
    /// Total model-checker calls issued across the stream.
    pub checker_calls: usize,
    /// Constraints carried across requests (engine reuse under the
    /// SAT-guided strategy with carry enabled; 0 everywhere else).
    pub constraints_carried: usize,
    /// Checkpoint-cache activity summed across the stream.
    pub checkpoint: CheckpointCounters,
}

/// Serves the stream once in the given mode and sums the per-request work
/// counters. Deterministic for fixed options — no timing involved. Panics if
/// any request fails: churn streams are solvable by construction.
pub fn churn_stream_counters(
    workload: &ChurnWorkload,
    options: &SynthesisOptions,
    mode: StreamMode,
) -> ChurnCounters {
    let mut counters = ChurnCounters::default();
    let mut absorb = |stats: &SynthStats| {
        counters.cegis_iterations += stats.cegis_iterations;
        counters.checker_calls += stats.model_checker_calls;
        counters.constraints_carried += stats.constraints_carried;
        counters.checkpoint.absorb(stats);
    };
    match mode {
        StreamMode::Fresh => {
            for problem in &workload.problems {
                let update = Synthesizer::new(problem.clone())
                    .with_options(options.clone())
                    .synthesize()
                    .expect("churn steps are solvable");
                absorb(&update.stats);
            }
        }
        StreamMode::Reuse => {
            let mut engine = UpdateEngine::for_problem(&workload.problems[0], options.clone());
            for problem in &workload.problems {
                let update = engine.solve(problem).expect("churn steps are solvable");
                absorb(&update.stats);
            }
        }
    }
    counters
}

/// Statistics of a constraint-proven infeasible run, recovered from the
/// engine's explanation side channel — the error path returns no
/// `UpdateSequence`, so [`UpdateEngine::last_explanation`] is the only place
/// an infeasible run's counters surface. `None` when the run succeeds, or
/// fails without an explanation (exhaustion, parallel DFS, portfolio).
pub fn infeasible_stats(problem: &UpdateProblem, options: &SynthesisOptions) -> Option<SynthStats> {
    let mut engine = UpdateEngine::for_problem(problem, options.clone());
    engine.solve(problem).err()?;
    engine.last_explanation().map(|e| e.stats.clone())
}

/// A generated multi-tenant serving workload: `tenants` independent churn
/// streams over one shared topology, flattened into a submission order that
/// interleaves the tenants round-robin by step (so concurrent tenants
/// genuinely contend for the worker fleet, instead of arriving one full
/// stream at a time).
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// The requests in submission order; each tenant's sub-sequence is its
    /// chained churn stream.
    pub requests: Vec<(TenantId, UpdateProblem)>,
    /// Number of tenants.
    pub tenants: usize,
    /// Churn steps per tenant.
    pub steps: usize,
    /// Number of switches in the shared topology.
    pub switches: usize,
}

/// Generates a seeded multi-tenant serving workload on a topology of roughly
/// `size` switches (see [`multi_tenant_churn_streams`]).
pub fn serve_workload(
    family: TopologyFamily,
    size: usize,
    kind: PropertyKind,
    tenants: usize,
    steps: usize,
    seed: u64,
) -> ServeWorkload {
    let graph = family.generate(size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545_f491);
    let streams = multi_tenant_churn_streams(&graph, kind, tenants, steps, &mut rng)
        .or_else(|| {
            let mut retry = StdRng::seed_from_u64(seed.wrapping_add(1));
            multi_tenant_churn_streams(&graph, kind, tenants, steps, &mut retry)
        })
        .expect("generated topologies admit multi-tenant churn streams");
    let topology = Arc::new(graph.topology().clone());
    let mut requests = Vec::with_capacity(tenants * steps);
    for step in 0..steps {
        for (t, stream) in streams.iter().enumerate() {
            requests.push((
                TenantId(t as u64),
                UpdateProblem::from_scenario_shared(&stream[step], Arc::clone(&topology)),
            ));
        }
    }
    ServeWorkload {
        requests,
        tenants,
        steps,
        switches: graph.num_switches(),
    }
}

/// The measurements of serving one [`ServeWorkload`] once through an
/// [`UpdateServer`].
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Wall-clock time from first submit to last response.
    pub wall: Duration,
    /// Per-request end-to-end latency (queue wait + service time), in
    /// submission order.
    pub e2e: Vec<Duration>,
    /// Per-request queue wait, in submission order.
    pub queue_waits: Vec<Duration>,
    /// Per-request synthesis time, in submission order.
    pub service_times: Vec<Duration>,
    /// Checkpoint-cache activity aggregated over every request's
    /// [`SynthStats`] passthrough.
    pub checkpoint: CheckpointCounters,
    /// The server's final metrics snapshot.
    pub snapshot: MetricsSnapshot,
}

impl ServeRun {
    /// Requests served per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.e2e.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean end-to-end latency per request.
    pub fn mean_e2e(&self) -> Duration {
        if self.e2e.is_empty() {
            Duration::ZERO
        } else {
            self.e2e.iter().sum::<Duration>() / self.e2e.len() as u32
        }
    }
}

/// Submits the whole workload to a fresh [`UpdateServer`] (started with
/// `config`), waits for every response, and returns the run's measurements.
/// The config's queue limits are raised to admit the whole workload — this
/// harness measures throughput and latency, not shedding. Panics if any
/// request fails: churn streams are solvable by construction.
pub fn run_serve_stream(workload: &ServeWorkload, config: ServeConfig) -> ServeRun {
    let config = config
        .tenant_queue_limit(workload.steps.max(1))
        .global_queue_limit(workload.requests.len().max(1));
    let server = UpdateServer::start(config);
    let start = Instant::now();
    let handles: Vec<_> = workload
        .requests
        .iter()
        .map(|(tenant, problem)| {
            server
                .submit(*tenant, problem.clone())
                .expect("bench limits admit the whole workload")
        })
        .collect();
    let mut e2e = Vec::with_capacity(handles.len());
    let mut queue_waits = Vec::with_capacity(handles.len());
    let mut service_times = Vec::with_capacity(handles.len());
    let mut checkpoint = CheckpointCounters::default();
    for handle in handles {
        let outcome = handle.wait();
        outcome.result.expect("churn steps are solvable");
        e2e.push(outcome.metrics.queue_wait + outcome.metrics.service_time);
        queue_waits.push(outcome.metrics.queue_wait);
        service_times.push(outcome.metrics.service_time);
        if let Some(stats) = &outcome.metrics.stats {
            checkpoint.absorb(stats);
        }
    }
    let wall = start.elapsed();
    ServeRun {
        wall,
        e2e,
        queue_waits,
        service_times,
        checkpoint,
        snapshot: server.shutdown(),
    }
}

/// The result of one timed synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisMeasurement {
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// The synthesis outcome: statistics on success, or the error.
    pub outcome: Result<SynthStats, SynthesisError>,
}

impl SynthesisMeasurement {
    /// Returns `true` if synthesis produced a sequence.
    pub fn succeeded(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Runs the synthesizer once with the given backend/granularity and measures
/// wall-clock time.
pub fn time_synthesis(
    problem: &UpdateProblem,
    backend: Backend,
    granularity: Granularity,
) -> SynthesisMeasurement {
    let options = SynthesisOptions::with_backend(backend).granularity(granularity);
    time_synthesis_with(problem, options)
}

/// Runs the synthesizer once with fully custom options and measures
/// wall-clock time.
pub fn time_synthesis_with(
    problem: &UpdateProblem,
    options: SynthesisOptions,
) -> SynthesisMeasurement {
    let synthesizer = Synthesizer::new(problem.clone()).with_options(options);
    let start = Instant::now();
    let result = synthesizer.synthesize();
    let elapsed = start.elapsed();
    SynthesisMeasurement {
        elapsed,
        outcome: result.map(|r| r.stats),
    }
}

/// Runs one synthesis and returns the effective [`SearchMode`] name from its
/// statistics. The figure benches attach this to their JSON records so the
/// scaling numbers stay interpretable: on hardware where the speculation cap
/// gates to zero (1-core containers), `threads > 1` runs degrade to the
/// inline single-flight mode, and a flat thread axis means "no concurrency
/// available", not "no speedup possible".
///
/// [`SearchMode`]: netupd_synth::SearchMode
pub fn probe_search_mode(problem: &UpdateProblem, options: &SynthesisOptions) -> &'static str {
    probe_run(problem, options).0
}

/// Runs one synthesis and returns both the effective search-mode name (see
/// [`probe_search_mode`]) and the run's deterministic checkpoint-cache
/// counters — the figure benches attach both to their JSON records from this
/// single probe call.
pub fn probe_run(
    problem: &UpdateProblem,
    options: &SynthesisOptions,
) -> (&'static str, CheckpointCounters) {
    match time_synthesis_with(problem, options.clone()).outcome {
        Ok(stats) => {
            let mut checkpoint = CheckpointCounters::default();
            checkpoint.absorb(&stats);
            (stats.search_mode.name(), checkpoint)
        }
        Err(_) => ("failed", CheckpointCounters::default()),
    }
}

/// Runs the synthesizer `runs` times and returns the wall-clock samples
/// (used by the figure-level benches to report `[min mean max]` series and
/// feed the machine-readable [`BenchReport`]).
pub fn sample_synthesis(
    problem: &UpdateProblem,
    backend: Backend,
    granularity: Granularity,
    runs: usize,
) -> Vec<Duration> {
    (0..runs.max(1))
        .map(|_| time_synthesis(problem, backend, granularity).elapsed)
        .collect()
}

/// Like [`sample_synthesis`], but with fully custom options (the scaling
/// benches use this to sweep [`SynthesisOptions::threads`]).
pub fn sample_synthesis_with(
    problem: &UpdateProblem,
    options: &SynthesisOptions,
    runs: usize,
) -> Vec<Duration> {
    (0..runs.max(1))
        .map(|_| time_synthesis_with(problem, options.clone()).elapsed)
        .collect()
}

/// Prints one row of a results table to standard error (so it is visible in
/// `cargo bench` output without interfering with Criterion's stdout).
pub fn print_row(columns: &[String]) {
    eprintln!("  {}", columns.join(" | "));
}

/// Prints a table header.
pub fn print_header(title: &str, columns: &[&str]) {
    eprintln!("\n== {title} ==");
    eprintln!("  {}", columns.join(" | "));
}

/// Formats a duration in milliseconds with two decimals.
pub fn fmt_ms(duration: Duration) -> String {
    format!("{:.2} ms", duration.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate_requested_sizes() {
        for family in TopologyFamily::ALL {
            let graph = family.generate(30, 7);
            assert!(graph.num_switches() >= 20, "{} too small", family.name());
            assert!(graph.is_connected());
        }
    }

    #[test]
    fn diamond_workload_is_deterministic() {
        let a = diamond_workload(
            TopologyFamily::SmallWorld,
            40,
            PropertyKind::Reachability,
            3,
        );
        let b = diamond_workload(
            TopologyFamily::SmallWorld,
            40,
            PropertyKind::Reachability,
            3,
        );
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.rules, b.rules);
        assert_eq!(
            a.scenario.pairs[0].initial_path,
            b.scenario.pairs[0].initial_path
        );
    }

    #[test]
    fn timed_synthesis_succeeds_on_a_small_diamond() {
        let workload = diamond_workload(TopologyFamily::FatTree, 20, PropertyKind::Reachability, 5);
        let measurement =
            time_synthesis(&workload.problem, Backend::Incremental, Granularity::Switch);
        assert!(measurement.succeeded());
        assert!(measurement.elapsed > Duration::ZERO);
    }

    #[test]
    fn churn_workload_chains_and_both_modes_serve_it() {
        let workload = churn_workload(
            TopologyFamily::FatTree,
            20,
            PropertyKind::Reachability,
            3,
            7,
        );
        assert_eq!(workload.problems.len(), 3);
        for pair in workload.problems.windows(2) {
            assert_eq!(pair[0].final_config, pair[1].initial);
        }
        let options = SynthesisOptions::default();
        for mode in StreamMode::ALL {
            let elapsed = time_churn_stream(&workload, &options, mode);
            assert!(elapsed > Duration::ZERO, "{} mode ran", mode.name());
        }
    }

    #[test]
    fn serve_workload_interleaves_and_the_server_drains_it() {
        let workload = serve_workload(
            TopologyFamily::FatTree,
            20,
            PropertyKind::Reachability,
            3,
            2,
            11,
        );
        assert_eq!(workload.requests.len(), 6);
        // Round-robin interleave: the first `tenants` requests are step 0 of
        // each tenant, in tenant order.
        let first_round: Vec<u64> = workload.requests[..3].iter().map(|(t, _)| t.0).collect();
        assert_eq!(first_round, vec![0, 1, 2]);

        let run = run_serve_stream(&workload, ServeConfig::default().worker_threads(2));
        assert_eq!(run.e2e.len(), 6);
        assert_eq!(run.snapshot.completed, 6);
        assert_eq!(run.snapshot.shed_tenant + run.snapshot.shed_global, 0);
        assert!(run.requests_per_sec() > 0.0);
        assert!(run.mean_e2e() > Duration::ZERO);
    }

    #[test]
    fn double_diamond_workload_is_built() {
        let workload =
            double_diamond_workload(TopologyFamily::FatTree, 20, PropertyKind::Reachability, 17);
        assert_eq!(workload.scenario.pairs.len(), 2);
    }
}
