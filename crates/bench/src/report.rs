//! Machine-readable benchmark reports.
//!
//! The textual tables the bench targets print are good for eyeballing a
//! shape; tracking a perf trajectory across PRs needs numbers a script can
//! diff. Each figure-level bench target collects its measured series into a
//! [`BenchReport`] and writes it as `BENCH_<name>.json` at the workspace
//! root (override the directory with `NETUPD_BENCH_JSON_DIR`).
//!
//! The JSON is emitted by hand: the workspace's `serde` is a vendored no-op
//! shim (see `vendor/README.md`), and the format here is flat enough that a
//! hand-rolled writer is clearer than carrying a real dependency.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One measured series: an identifier, labeled parameters, and the
/// `[min mean max]` of its wall-clock samples.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Stable identifier, e.g. `fig7/wan-zoo/incremental/20`.
    pub id: String,
    /// Labeled parameters (`family`, `backend`, `switches`, ...).
    pub params: Vec<(String, String)>,
    /// Number of samples taken.
    pub samples: usize,
    /// Fastest sample, in milliseconds.
    pub min_ms: f64,
    /// Mean over all samples, in milliseconds.
    pub mean_ms: f64,
    /// Slowest sample, in milliseconds.
    pub max_ms: f64,
}

/// A collection of [`BenchRecord`]s for one figure-level bench target.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Creates an empty report for the bench target `name` (e.g. `fig7`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Adds one measured series.
    pub fn record(&mut self, id: impl Into<String>, params: &[(&str, &str)], samples: &[Duration]) {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        let (min, max) = ms.iter().fold((f64::INFINITY, 0f64), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        });
        let mean = if ms.is_empty() {
            0.0
        } else {
            ms.iter().sum::<f64>() / ms.len() as f64
        };
        self.records.push(BenchRecord {
            id: id.into(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            samples: ms.len(),
            min_ms: if ms.is_empty() { 0.0 } else { min },
            mean_ms: mean,
            max_ms: max,
        });
    }

    /// The records collected so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Serializes the report as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.name)));
        out.push_str("  \"unit\": \"ms\",\n");
        out.push_str("  \"results\": [\n");
        for (i, rec) in self.records.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"id\": {}", json_string(&rec.id)));
            for (key, value) in &rec.params {
                out.push_str(&format!(", {}: ", json_string(key)));
                // Numeric-looking parameters stay numbers in the JSON.
                if is_json_number(value) {
                    out.push_str(value);
                } else {
                    out.push_str(&json_string(value));
                }
            }
            out.push_str(&format!(
                ", \"samples\": {}, \"min_ms\": {:.4}, \"mean_ms\": {:.4}, \"max_ms\": {:.4}}}",
                rec.samples, rec.min_ms, rec.mean_ms, rec.max_ms
            ));
            out.push_str(if i + 1 == self.records.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `BENCH_<name>.json` in the output directory:
    /// `NETUPD_BENCH_JSON_DIR` if set, otherwise the workspace root. Returns
    /// the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("NETUPD_BENCH_JSON_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                // crates/bench -> workspace root
                Path::new(env!("CARGO_MANIFEST_DIR"))
                    .ancestors()
                    .nth(2)
                    .expect("bench crate lives two levels below the workspace root")
                    .to_path_buf()
            });
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        eprintln!("  wrote {}", path.display());
        Ok(path)
    }
}

/// Formats `[min mean max]` of a sample series, for the textual tables.
pub fn fmt_min_mean_max(samples: &[Duration]) -> String {
    if samples.is_empty() {
        return "[no samples]".to_string();
    }
    let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    let min = ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ms.iter().cloned().fold(0f64, f64::max);
    let mean = ms.iter().sum::<f64>() / ms.len() as f64;
    format!("[{min:.2} {mean:.2} {max:.2}] ms")
}

/// Whether a parameter value is also a valid JSON number literal: an `i64`,
/// or a plain decimal like `123.4567` (optionally negative) — the subset the
/// rate/latency parameters of the serving bench use. Exotic float renderings
/// (`1e5`, `inf`, `1.`) stay quoted strings.
fn is_json_number(value: &str) -> bool {
    if value.parse::<i64>().is_ok() {
        return true;
    }
    let digits = value.strip_prefix('-').unwrap_or(value);
    match digits.split_once('.') {
        Some((int, frac)) => {
            !int.is_empty()
                && !frac.is_empty()
                && int.bytes().all(|b| b.is_ascii_digit())
                && frac.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_numbers_and_strings() {
        let mut report = BenchReport::new("test");
        report.record(
            "fig/x/1",
            &[("family", "wan-zoo"), ("switches", "21")],
            &[Duration::from_millis(2), Duration::from_millis(4)],
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"test\""));
        assert!(json.contains("\"family\": \"wan-zoo\""));
        assert!(json.contains("\"switches\": 21"));
        assert!(json.contains("\"samples\": 2"));
        assert!(json.contains("\"min_ms\": 2.0000"));
        assert!(json.contains("\"max_ms\": 4.0000"));
        assert_eq!(report.records().len(), 1);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn float_parameters_are_emitted_as_numbers() {
        assert!(is_json_number("21"));
        assert!(is_json_number("-3"));
        assert!(is_json_number("123.4567"));
        assert!(is_json_number("-0.25"));
        assert!(!is_json_number("1e5"));
        assert!(!is_json_number("1."));
        assert!(!is_json_number(".5"));
        assert!(!is_json_number("inf"));
        assert!(!is_json_number("NaN"));
        assert!(!is_json_number("fat-tree"));

        let mut report = BenchReport::new("floats");
        report.record(
            "serve/x",
            &[("rps", "812.5000"), ("mode", "reuse")],
            &[Duration::from_millis(1)],
        );
        let json = report.to_json();
        assert!(json.contains("\"rps\": 812.5000"));
        assert!(json.contains("\"mode\": \"reuse\""));
    }

    #[test]
    fn min_mean_max_formatting() {
        let samples = [Duration::from_millis(1), Duration::from_millis(3)];
        assert_eq!(fmt_min_mean_max(&samples), "[1.00 2.00 3.00] ms");
        assert_eq!(fmt_min_mean_max(&[]), "[no samples]");
    }
}
