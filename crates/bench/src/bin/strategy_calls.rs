//! One-shot strategy-comparison harness behind the EXPERIMENTS.md "Search
//! strategies" tables: per-shape model-checker calls, charged budgets, and
//! CEGIS iteration counts for the DFS, the SAT-guided strategy, and the
//! portfolio, on the fig7/fig8 workloads (Incremental backend, one thread).
//!
//! All printed counts are deterministic — one run per shape is the protocol.
//! Times are indicative only. Run with:
//! `cargo run --release -p netupd-bench --bin strategy_calls`

use netupd_bench::{
    diamond_workload, multi_diamond_workload, print_header, print_row, time_synthesis_with,
    TopologyFamily, Workload,
};
use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthStats, SynthesisOptions};
use netupd_topo::scenario::PropertyKind;

fn shapes() -> Vec<(String, Workload)> {
    let mut shapes = Vec::new();
    for family in [
        TopologyFamily::Wan,
        TopologyFamily::FatTree,
        TopologyFamily::SmallWorld,
    ] {
        for size in [20usize, 100] {
            shapes.push((
                format!("fig7/{}/{}", family.name(), size),
                diamond_workload(family, size, PropertyKind::Reachability, 42),
            ));
        }
    }
    for (property, sizes) in [
        (PropertyKind::Reachability, &[50usize, 200][..]),
        (PropertyKind::Waypoint, &[100, 200][..]),
        (PropertyKind::ServiceChain { length: 3 }, &[100, 200][..]),
    ] {
        for &size in sizes {
            shapes.push((
                format!("fig8/{}/{}", property.name(), size),
                multi_diamond_workload(TopologyFamily::SmallWorld, size, property, 4, 7),
            ));
        }
    }
    shapes
}

fn run(workload: &Workload, strategy: SearchStrategy) -> (SynthStats, f64) {
    let options = SynthesisOptions::with_backend(Backend::Incremental).strategy(strategy);
    let single = time_synthesis_with(&workload.problem, options);
    let stats = single
        .outcome
        .expect("strategy-comparison shapes are solvable");
    (stats, single.elapsed.as_secs_f64() * 1e3)
}

fn main() {
    print_header(
        "Strategy comparison: model-checker calls and charged budgets (incremental, t1)",
        &[
            "shape",
            "dfs calls",
            "sat calls",
            "cegis iters",
            "dfs charged",
            "sat charged",
            "pf charged",
            "pf real",
            "dfs ms",
            "sat ms",
        ],
    );
    for (name, workload) in shapes() {
        let (dfs, dfs_ms) = run(&workload, SearchStrategy::Dfs);
        let (sat, sat_ms) = run(&workload, SearchStrategy::SatGuided);
        let (pf, _) = run(&workload, SearchStrategy::Portfolio);
        print_row(&[
            name,
            dfs.model_checker_calls.to_string(),
            sat.model_checker_calls.to_string(),
            sat.cegis_iterations.to_string(),
            dfs.charged_calls.to_string(),
            sat.charged_calls.to_string(),
            pf.charged_calls.to_string(),
            pf.model_checker_calls.to_string(),
            format!("{dfs_ms:.2}"),
            format!("{sat_ms:.2}"),
        ]);
    }
}
