//! A monolithic explicit-state tableau-product checker (NuSMV stand-in).
//!
//! This backend implements the classical automata-theoretic approach: the
//! specification is negated, the negation's closure induces a tableau of
//! *atoms* (maximally-consistent assignments), and the checker searches the
//! product of the Kripke structure with that tableau for a self-fulfilling
//! lasso. Because the structures produced by the network encoding are
//! DAG-like, every lasso is a path ending in a sink self-loop, so the search
//! is a simple DFS.
//!
//! The point of this backend is its *cost profile*, which matches the
//! external symbolic checker the paper compares against: it is a
//! general-purpose LTL checker that rebuilds its product from scratch on
//! every query and reuses nothing between the closely-related queries the
//! synthesizer issues. Like NuSMV, it does produce counterexamples.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use netupd_kripke::{Kripke, StateId};
use netupd_ltl::{
    cache as ltl_cache, Assignment, Closure, Ltl, PropSet, PropSetRef, ResolvedProps,
};

use crate::checker::{CheckOutcome, CheckStats, CheckerSnapshot, Counterexample, ModelChecker};

/// Marker payload of the product checker's trivial snapshots: the product is
/// rebuilt from scratch every query, so there is no result state to capture.
#[derive(Debug)]
struct ProductSnapshot;

/// Monolithic tableau-product model checker.
///
/// The checker owns the per-query atom cache (cleared at the start of every
/// [`check`](ModelChecker::check), preserving the from-scratch cost profile);
/// atom vectors are shared between same-label states via [`Arc`], so the
/// checker is `Send` and cheap to instantiate once per search worker.
#[derive(Debug, Default)]
pub struct ProductChecker {
    cache: AtomCache,
}

impl ProductChecker {
    /// Creates a product checker.
    pub fn new() -> Self {
        ProductChecker::default()
    }
}

impl ModelChecker for ProductChecker {
    fn check(&mut self, kripke: &Kripke, phi: &Ltl) -> CheckOutcome {
        // The negated spec's closure (and its resolution against this
        // structure's table) is shared across the query stream; the product
        // itself is still rebuilt from scratch per query — the cost profile
        // this backend exists to model.
        let negated = phi.negated();
        let closure = ltl_cache::shared_closure(&negated);
        let tableau = Tableau::new(closure, kripke);
        self.cache.reset(kripke.len());
        let stats = CheckStats {
            states_labeled: kripke.len(),
            total_states: kripke.len(),
            incremental: false,
        };
        match tableau.find_violation(kripke, &mut self.cache) {
            None => CheckOutcome::success(stats),
            Some(path) => {
                CheckOutcome::failure(Some(Counterexample::from_states(kripke, path)), stats)
            }
        }
    }

    /// The product checker rebuilds its tableau product every query (the atom
    /// cache is reset per check), so its snapshots are empty and restoring
    /// one is trivially correct.
    fn snapshot(&self) -> Option<CheckerSnapshot> {
        Some(CheckerSnapshot::new(ProductSnapshot, 0))
    }

    fn restore(&mut self, snapshot: &CheckerSnapshot) -> bool {
        snapshot.downcast::<ProductSnapshot>().is_some()
    }

    fn name(&self) -> &'static str {
        "product"
    }
}

/// The atom cache for one query: a dense per-state slot array plus a sharing
/// index from interned label to the atoms enumerated against it.
///
/// Owned by the [`ProductChecker`] (not the per-query tableau) so the backing
/// allocations are reused across the synthesizer's query series while the
/// *contents* are rebuilt from scratch every query, and so the sharing uses
/// thread-safe [`Arc`] handles rather than `Rc`/`RefCell` interior
/// mutability.
#[derive(Debug, Default)]
struct AtomCache {
    /// Dense per-state atom cache: one slot per state id.
    state_atoms: Vec<Option<Arc<Vec<Assignment>>>>,
    /// Sharing index from interned label to the atoms enumerated against it.
    by_label: HashMap<PropSet, Arc<Vec<Assignment>>>,
}

impl AtomCache {
    /// Clears the cache and resizes the per-state slots for a structure of
    /// `states` states.
    fn reset(&mut self, states: usize) {
        self.state_atoms.clear();
        self.state_atoms.resize(states, None);
        self.by_label.clear();
    }
}

/// The tableau of the negated specification.
struct Tableau {
    closure: Arc<Closure>,
    /// The closure's atomic subformulas resolved against the structure's
    /// proposition table, so atom enumeration probes label bits directly.
    resolved: Arc<ResolvedProps>,
    /// Indices of the temporal subformulas whose truth value must be guessed
    /// when enumerating atoms.
    temporal: Vec<usize>,
    /// Per formula id: its position in `temporal` (`usize::MAX` otherwise),
    /// so atom enumeration avoids a linear scan per node per mask.
    temporal_pos: Vec<usize>,
    /// `(until_id, rhs_id)` pairs used for the self-fulfillment check.
    untils: Vec<(usize, usize)>,
}

impl Tableau {
    fn new(closure: Arc<Closure>, kripke: &Kripke) -> Self {
        let resolved = ltl_cache::shared_resolution(&closure, kripke.props());
        let temporal: Vec<usize> = closure
            .iter()
            .filter(|(_, phi)| matches!(phi, Ltl::Next(_) | Ltl::Until(..) | Ltl::Release(..)))
            .map(|(id, _)| id)
            .collect();
        let mut temporal_pos = vec![usize::MAX; closure.len()];
        for (pos, id) in temporal.iter().enumerate() {
            temporal_pos[*id] = pos;
        }
        let untils: Vec<(usize, usize)> = closure
            .until_ids()
            .into_iter()
            .map(|id| (id, closure.until_rhs(id)))
            .collect();
        Tableau {
            closure,
            resolved,
            temporal,
            temporal_pos,
            untils,
        }
    }

    /// The atoms consistent with a state's label, from the dense per-state
    /// cache (falling back to the by-label sharing index, then enumeration).
    fn atoms_for_state(
        &self,
        kripke: &Kripke,
        cache: &mut AtomCache,
        state: StateId,
    ) -> Arc<Vec<Assignment>> {
        if let Some(cached) = &cache.state_atoms[state.0] {
            return Arc::clone(cached);
        }
        let label = kripke.label(state);
        let owned = label.to_owned();
        let atoms = match cache.by_label.get(&owned) {
            Some(shared) => Arc::clone(shared),
            None => {
                let enumerated = Arc::new(self.enumerate_atoms(label));
                cache.by_label.insert(owned, Arc::clone(&enumerated));
                enumerated
            }
        };
        cache.state_atoms[state.0] = Some(Arc::clone(&atoms));
        atoms
    }

    /// Enumerates the atoms consistent with a state label: every combination
    /// of truth values for the temporal subformulas, with propositional truth
    /// fixed by the label and boolean connectives derived bottom-up.
    fn enumerate_atoms(&self, label: PropSetRef<'_>) -> Vec<Assignment> {
        let t = self.temporal.len();
        let mut atoms = Vec::with_capacity(1 << t.min(16));
        for mask in 0u64..(1u64 << t.min(20)) {
            let mut assignment = self.closure.empty_assignment();
            for (id, phi) in self.closure.iter() {
                let [a, b] = self.closure.child_ids(id);
                let value = match phi {
                    Ltl::True => true,
                    Ltl::False => false,
                    Ltl::Prop(_) => self.resolved.prop_in_label(id, label),
                    Ltl::NotProp(_) => !self.resolved.prop_in_label(id, label),
                    Ltl::And(..) => assignment.get(a) && assignment.get(b),
                    Ltl::Or(..) => assignment.get(a) || assignment.get(b),
                    Ltl::Next(_) | Ltl::Until(..) | Ltl::Release(..) => {
                        (mask >> self.temporal_pos[id]) & 1 == 1
                    }
                };
                assignment.set(id, value);
            }
            // Enforce the expansion laws locally: an Until that claims to hold
            // must have its rhs now or its lhs now; a Release that claims to
            // hold must have its rhs now. This prunes clearly inconsistent
            // atoms early (the `follows` relation enforces the rest).
            if self.locally_plausible(&assignment) {
                atoms.push(assignment);
            }
        }
        atoms.sort_unstable();
        atoms.dedup();
        atoms
    }

    fn locally_plausible(&self, m: &Assignment) -> bool {
        for (id, phi) in self.closure.iter() {
            let [a, b] = self.closure.child_ids(id);
            match phi {
                Ltl::Until(..) => {
                    let a = m.get(a);
                    let b = m.get(b);
                    if m.get(id) && !a && !b {
                        return false;
                    }
                    if !m.get(id) && b {
                        return false;
                    }
                }
                Ltl::Release(..) => {
                    let b = m.get(b);
                    if m.get(id) && !b {
                        return false;
                    }
                }
                _ => {}
            }
        }
        true
    }

    /// Returns `true` if the atom is self-fulfilling at a sink: it can repeat
    /// forever (follows itself) and every Until it asserts is discharged.
    fn self_fulfilling(&self, m: &Assignment) -> bool {
        if !self.closure.follows(m, m) {
            return false;
        }
        self.untils
            .iter()
            .all(|(until, rhs)| !m.get(*until) || m.get(*rhs))
    }

    /// Searches for a path from an initial state, paired with an atom
    /// asserting the negated specification, to a self-fulfilling sink atom.
    /// Returns the state path if found (i.e. the original property fails).
    fn find_violation(&self, kripke: &Kripke, cache: &mut AtomCache) -> Option<Vec<StateId>> {
        let root = self.closure.root_id();
        let mut visited: HashSet<(StateId, Assignment)> = HashSet::new();
        for initial in kripke.initial_states() {
            let atoms = self.atoms_for_state(kripke, cache, initial);
            for atom in atoms.iter() {
                if !atom.get(root) {
                    continue;
                }
                let mut path = Vec::new();
                if self.dfs(kripke, cache, initial, atom, &mut visited, &mut path) {
                    return Some(path);
                }
            }
        }
        None
    }

    fn dfs(
        &self,
        kripke: &Kripke,
        cache: &mut AtomCache,
        state: StateId,
        atom: &Assignment,
        visited: &mut HashSet<(StateId, Assignment)>,
        path: &mut Vec<StateId>,
    ) -> bool {
        if !visited.insert((state, atom.clone())) {
            return false;
        }
        path.push(state);
        if kripke.is_sink(state) && self.self_fulfilling(atom) {
            return true;
        }
        for succ in kripke.successors(state) {
            if *succ == state {
                continue;
            }
            let next_atoms = self.atoms_for_state(kripke, cache, *succ);
            for next_atom in next_atoms.iter() {
                if self.closure.follows(atom, next_atom)
                    && self.dfs(kripke, cache, *succ, next_atom, visited, path)
                {
                    return true;
                }
            }
        }
        path.pop();
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchChecker;
    use netupd_kripke::NetworkKripke;
    use netupd_ltl::{builders, Prop};
    use netupd_model::prelude::*;

    /// A diamond network: h0 - s0 - {s1, s2} - s3 - h1.
    fn diamond(use_upper: bool) -> (NetworkKripke, Configuration, HostId) {
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let s = topo.add_switches(4);
        topo.attach_host(h0, s[0], PortId(1));
        topo.add_duplex_link(s[0], PortId(2), s[1], PortId(1));
        topo.add_duplex_link(s[0], PortId(3), s[2], PortId(1));
        topo.add_duplex_link(s[1], PortId(2), s[3], PortId(1));
        topo.add_duplex_link(s[2], PortId(2), s[3], PortId(2));
        topo.attach_host(h1, s[3], PortId(3));
        let fwd = |port: u32| {
            Table::new(vec![Rule::new(
                Priority(1),
                Pattern::any().with_field(Field::Dst, 1),
                vec![Action::Forward(PortId(port))],
            )])
        };
        let config = Configuration::new()
            .with_table(s[0], fwd(if use_upper { 2 } else { 3 }))
            .with_table(s[1], fwd(2))
            .with_table(s[2], fwd(2))
            .with_table(s[3], fwd(3));
        let class = TrafficClass::new().with_field(Field::Dst, 1);
        let encoder = NetworkKripke::new(topo, vec![class]).with_ingress_hosts([h0]);
        (encoder, config, h1)
    }

    #[test]
    fn agrees_with_batch_on_reachability() {
        let (encoder, config, h1) = diamond(true);
        let kripke = encoder.encode(&config);
        let spec = builders::reachability(Prop::AtHost(h1));
        let mut product = ProductChecker::new();
        let mut batch = BatchChecker::new();
        assert_eq!(
            product.check(&kripke, &spec).holds,
            batch.check(&kripke, &spec).holds
        );
        assert!(product.check(&kripke, &spec).holds);
    }

    #[test]
    fn agrees_with_batch_on_waypointing() {
        let (encoder, config, h1) = diamond(true);
        let kripke = encoder.encode(&config);
        // Traffic goes through s1 (the upper path).
        let good = builders::waypoint(Prop::switch(1), Prop::AtHost(h1));
        let bad = builders::waypoint(Prop::switch(2), Prop::AtHost(h1));
        let mut product = ProductChecker::new();
        let mut batch = BatchChecker::new();
        for spec in [&good, &bad] {
            assert_eq!(
                product.check(&kripke, spec).holds,
                batch.check(&kripke, spec).holds,
                "disagreement on {spec}"
            );
        }
        assert!(product.check(&kripke, &good).holds);
        let failure = product.check(&kripke, &bad);
        assert!(!failure.holds);
        assert!(failure.counterexample.is_some());
    }

    #[test]
    fn agrees_with_batch_on_drop_freedom() {
        let (encoder, config, _h1) = diamond(false);
        let kripke = encoder.encode(&config);
        let spec = builders::no_drops();
        let mut product = ProductChecker::new();
        let mut batch = BatchChecker::new();
        assert_eq!(
            product.check(&kripke, &spec).holds,
            batch.check(&kripke, &spec).holds
        );
        // Breaking a switch in the middle of the active path introduces drops.
        let broken = config.updated(SwitchId(2), Table::empty());
        let kripke = encoder.encode(&broken);
        assert_eq!(
            product.check(&kripke, &spec).holds,
            batch.check(&kripke, &spec).holds
        );
        assert!(!product.check(&kripke, &spec).holds);
    }
}
