//! The state-labeling engine shared by the incremental and batch checkers.
//!
//! Following §5.1 of the paper, every state `q` is labeled with the set of
//! maximally-consistent subsets `M ⊆ ecl(ϕ)` for which some trace starting at
//! `q` satisfies every formula in `M`. Labels are computed bottom-up over the
//! DAG (sinks first); for sinks the unique stuttering trace determines a
//! single assignment, and for internal states each successor assignment
//! induces exactly one assignment at the state.
//!
//! [`Labeling::relabel`] implements the incremental step: after an update
//! changes the transitions of a set `U` of states, only the ancestors of `U`
//! can have different labels, and relabeling stops propagating as soon as a
//! recomputed label is unchanged (the Figure 6 optimization).
//!
//! Representation: per-state assignment vectors live in one flat backing
//! `Vec<Assignment>` addressed through `(offset, len)` spans, and the
//! region/dirty bookkeeping of `relabel` runs over dense [`StateSet`]
//! bitmaps — no per-state allocation, no tree-set churn on the hot path.
//! Atomic-proposition tests go through the closure's interned resolution
//! against the structure's [`PropTable`](netupd_ltl::PropTable), so each
//! label probe is a single bit test.

use std::collections::VecDeque;
use std::sync::Arc;

use netupd_kripke::{Kripke, StateId, StateSet};
use netupd_ltl::{cache, Assignment, Closure, Ltl, ResolvedProps};

/// A correct labeling of a Kripke structure with respect to a specification.
#[derive(Debug, Clone)]
pub struct Labeling {
    /// The specification closure, shared process-wide per formula
    /// (`netupd_ltl::cache`), so a stream of requests with a repeated spec
    /// builds it once.
    closure: Arc<Closure>,
    /// The closure's atomic subformulas resolved against the structure's
    /// table, shared per `(spec, table)` pair.
    resolved: Arc<ResolvedProps>,
    /// The table key (`PropTable::cache_key`) the resolution was computed
    /// for; re-resolution only happens when the key changes (the table
    /// interned new propositions, or the labeling moved to a new structure).
    resolved_key: (u64, usize),
    /// Per-state `(offset, len)` span into `backing`.
    spans: Vec<(u32, u32)>,
    /// Flat backing storage for all per-state assignment vectors.
    backing: Vec<Assignment>,
    /// Number of superseded (dead) assignments still occupying `backing`;
    /// when they outnumber the live ones the storage is compacted.
    dead: usize,
    /// Reusable per-state counters for `region_topological_order`, so a
    /// relabel of a small region does not pay an O(total-states) allocation.
    /// Entries are only meaningful for the current call's region members.
    scratch_remaining: Vec<u32>,
}

impl Labeling {
    /// Computes a labeling of `kripke` with respect to `phi` from scratch.
    ///
    /// Returns the labeling and the number of states labeled (always the size
    /// of the structure).
    ///
    /// # Panics
    ///
    /// Panics if `kripke` is not DAG-like (has a cycle that is not a sink
    /// self-loop); the synthesizer rejects such configurations before
    /// checking them.
    pub fn label_all(kripke: &Kripke, phi: &Ltl) -> (Labeling, usize) {
        let closure = cache::shared_closure(phi);
        let resolved = cache::shared_resolution(&closure, kripke.props());
        let mut labeling = Labeling {
            closure,
            resolved,
            resolved_key: kripke.props().cache_key(),
            spans: Vec::new(),
            backing: Vec::with_capacity(kripke.len()),
            dead: 0,
            scratch_remaining: Vec::new(),
        };
        let count = labeling.recompute(kripke);
        (labeling, count)
    }

    /// Recomputes this labeling from scratch for `kripke` and `phi`,
    /// **reusing** the span/backing/scratch allocations of the previous
    /// computation. Semantically identical to replacing `self` with
    /// `Labeling::label_all(kripke, phi)`; returns the number of states
    /// labeled.
    ///
    /// This is the `begin_query`-style reset path: a reusable checker serving
    /// a stream of queries recycles its labeling storage instead of dropping
    /// and reallocating it per query.
    pub fn relabel_all(&mut self, kripke: &Kripke, phi: &Ltl) -> usize {
        if self.closure.root() != phi {
            self.closure = cache::shared_closure(phi);
            // A new spec invalidates the resolution regardless of the table.
            self.resolved = cache::shared_resolution(&self.closure, kripke.props());
            self.resolved_key = kripke.props().cache_key();
        } else {
            self.refresh_resolution(kripke);
        }
        self.recompute(kripke)
    }

    /// Re-resolves the closure against the structure's table iff the table
    /// key changed (new propositions interned, or a different table).
    fn refresh_resolution(&mut self, kripke: &Kripke) {
        let key = kripke.props().cache_key();
        if key != self.resolved_key {
            self.resolved = cache::shared_resolution(&self.closure, kripke.props());
            self.resolved_key = key;
        }
    }

    /// Labels every state of `kripke` bottom-up, reusing the backing storage.
    fn recompute(&mut self, kripke: &Kripke) -> usize {
        self.spans.clear();
        self.spans.resize(kripke.len(), (0, 0));
        self.backing.clear();
        self.dead = 0;
        let order = kripke
            .topological_order()
            .expect("network Kripke structures are DAG-like");
        for state in &order {
            let label = self.compute_label(kripke, *state);
            self.spans[state.0] = (self.backing.len() as u32, label.len() as u32);
            self.backing.extend(label);
        }
        kripke.len()
    }

    /// Estimated resident size of the labeling's owned storage, for snapshot
    /// budget accounting (the shared `Arc` closure/resolution are not
    /// counted — every clone shares them).
    pub fn approx_bytes(&self) -> usize {
        self.spans.len() * std::mem::size_of::<(u32, u32)>()
            + self.backing.len() * std::mem::size_of::<Assignment>()
            + self.scratch_remaining.len() * std::mem::size_of::<u32>()
    }

    /// The specification closure this labeling was computed for.
    pub fn closure(&self) -> &Closure {
        &self.closure
    }

    /// The label of a state.
    #[inline]
    pub fn label(&self, state: StateId) -> &[Assignment] {
        let (offset, len) = self.spans[state.0];
        &self.backing[offset as usize..(offset + len) as usize]
    }

    /// Recomputes labels after the outgoing transitions of `changed` states
    /// were modified, walking ancestors and stopping early when a label is
    /// unchanged. Returns the number of states whose label was recomputed.
    pub fn relabel(&mut self, kripke: &Kripke, changed: &[StateId]) -> usize {
        if changed.is_empty() {
            return 0;
        }
        if self.spans.len() != kripke.len() {
            // The state space itself changed; fall back to a full relabel
            // (reusing this labeling's storage).
            self.refresh_resolution(kripke);
            return self.recompute(kripke);
        }
        // The table only grows and ids are stable, so a resolution stays
        // valid until the table key changes (a newly interned proposition).
        self.refresh_resolution(kripke);

        // Restrict attention to ancestors of the changed states and process
        // them in an order where successors-in-the-region come first.
        let region = kripke.ancestors(changed);
        let order = region_topological_order(kripke, &region, &mut self.scratch_remaining);

        let mut dirty: StateSet = changed.iter().copied().collect();
        let mut relabeled = 0;
        for state in order {
            if !dirty.contains(state) {
                continue;
            }
            let new_label = self.compute_label(kripke, state);
            relabeled += 1;
            if new_label.as_slice() != self.label(state) {
                self.replace_label(state, new_label);
                for pred in kripke.predecessors(state) {
                    if *pred != state {
                        dirty.insert(*pred);
                    }
                }
            }
        }
        relabeled
    }

    /// Returns the first initial state (and offending assignment) whose label
    /// contains an assignment violating the specification, if any.
    pub fn violating_initial(&self, kripke: &Kripke) -> Option<(StateId, Assignment)> {
        for state in kripke.initial_states() {
            for assignment in self.label(state) {
                if !self.closure.satisfies_root(assignment) {
                    return Some((state, assignment.clone()));
                }
            }
        }
        None
    }

    /// Returns `true` if every trace from every initial state satisfies the
    /// specification.
    pub fn holds(&self, kripke: &Kripke) -> bool {
        self.violating_initial(kripke).is_none()
    }

    /// Extracts a violating path starting at `state`, whose label contains
    /// `assignment` (typically obtained from [`violating_initial`]).
    ///
    /// The path follows, at each step, a successor whose label contains an
    /// assignment that *explains* the current one (in the sense of the
    /// `follows` relation); it ends at a sink state.
    ///
    /// [`violating_initial`]: Labeling::violating_initial
    pub fn extract_path(
        &self,
        kripke: &Kripke,
        state: StateId,
        assignment: &Assignment,
    ) -> Vec<StateId> {
        let mut path = vec![state];
        let mut current_state = state;
        let mut current = assignment.clone();
        loop {
            if kripke.is_sink(current_state) {
                return path;
            }
            let label = kripke.label(current_state);
            let mut advanced = false;
            'succ: for succ in kripke.successors(current_state) {
                if *succ == current_state {
                    continue;
                }
                for candidate in self.label(*succ) {
                    let implied = self.closure.successor_assignment_interned(
                        label,
                        candidate,
                        &self.resolved,
                    );
                    if implied == current {
                        path.push(*succ);
                        current_state = *succ;
                        current = candidate.clone();
                        advanced = true;
                        break 'succ;
                    }
                }
            }
            if !advanced {
                // The labeling is correct by construction, so this only
                // happens if the caller passed an assignment that is not in
                // the state's label; return what we have.
                return path;
            }
        }
    }

    // ---- internals ---------------------------------------------------------

    fn compute_label(&self, kripke: &Kripke, state: StateId) -> Vec<Assignment> {
        let label = kripke.label(state);
        if kripke.is_sink(state) {
            return vec![self.closure.sink_assignment_interned(label, &self.resolved)];
        }
        let mut assignments: Vec<Assignment> = Vec::new();
        for succ in kripke.successors(state) {
            if *succ == state {
                continue;
            }
            for successor_assignment in self.label(*succ) {
                assignments.push(self.closure.successor_assignment_interned(
                    label,
                    successor_assignment,
                    &self.resolved,
                ));
            }
        }
        assignments.sort_unstable();
        assignments.dedup();
        assignments
    }

    /// Replaces one state's span. Same-length labels are overwritten in
    /// place; different lengths append to the backing and leave the old span
    /// dead until the next compaction.
    fn replace_label(&mut self, state: StateId, new: Vec<Assignment>) {
        let (offset, len) = self.spans[state.0];
        if new.len() == len as usize {
            for (dst, src) in self.backing[offset as usize..].iter_mut().zip(new) {
                *dst = src;
            }
            return;
        }
        self.dead += len as usize;
        self.spans[state.0] = (self.backing.len() as u32, new.len() as u32);
        self.backing.extend(new);
        if self.dead > self.backing.len() / 2 && self.backing.len() > 1024 {
            self.compact();
        }
    }

    /// Rewrites `backing` keeping only live spans, in state order.
    fn compact(&mut self) {
        let live = self.backing.len() - self.dead;
        let mut compacted = Vec::with_capacity(live);
        for span in &mut self.spans {
            let (offset, len) = *span;
            let start = compacted.len() as u32;
            compacted.extend_from_slice(&self.backing[offset as usize..(offset + len) as usize]);
            *span = (start, len);
        }
        self.backing = compacted;
        self.dead = 0;
    }
}

/// A topological order (successors first) of the subgraph induced by
/// `region`, ignoring self-loops. Edges leaving the region are ignored: those
/// successors already have correct labels.
///
/// `remaining` is a caller-owned scratch buffer of per-state counters; only
/// the entries of region members are written and read, so it never needs
/// clearing — a relabel of a small region stays O(region), not O(states).
fn region_topological_order(
    kripke: &Kripke,
    region: &StateSet,
    remaining: &mut Vec<u32>,
) -> Vec<StateId> {
    if remaining.len() < kripke.len() {
        remaining.resize(kripke.len(), 0);
    }
    let mut size = 0;
    for state in region.iter() {
        remaining[state.0] = kripke
            .successors(state)
            .iter()
            .filter(|s| **s != state && region.contains(**s))
            .count() as u32;
        size += 1;
    }
    let mut queue: VecDeque<StateId> = region.iter().filter(|s| remaining[s.0] == 0).collect();
    let mut order = Vec::with_capacity(size);
    while let Some(state) = queue.pop_front() {
        order.push(state);
        for pred in kripke.predecessors(state) {
            if *pred == state || !region.contains(*pred) {
                continue;
            }
            remaining[pred.0] -= 1;
            if remaining[pred.0] == 0 {
                queue.push_back(*pred);
            }
        }
    }
    debug_assert_eq!(order.len(), size, "region must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use netupd_ltl::{builders, Prop};
    use netupd_model::{PortId, SwitchId};

    fn key(sw: u32) -> netupd_kripke::StateKey {
        netupd_kripke::StateKey::arrival(SwitchId(sw), PortId(1), 0)
    }

    fn label(sw: u32) -> [Prop; 1] {
        [Prop::switch(sw)]
    }

    /// Figure-6-style structure: H -> {I, J}; I -> {K, L}; J -> {M, N};
    /// K, L, M, N are sinks.
    fn figure6() -> (Kripke, Vec<StateId>) {
        let mut k = Kripke::new();
        let h = k.add_state(key(0), label(0));
        let i = k.add_state(key(1), label(1));
        let j = k.add_state(key(2), label(2));
        let kk = k.add_state(key(3), label(3));
        let l = k.add_state(key(4), label(4));
        let m = k.add_state(key(5), label(5));
        let n = k.add_state(key(6), label(6));
        k.mark_initial(h);
        k.add_transition(h, i);
        k.add_transition(h, j);
        k.add_transition(i, kk);
        k.add_transition(i, l);
        k.add_transition(j, m);
        k.add_transition(j, n);
        for sink in [kk, l, m, n] {
            k.add_transition(sink, sink);
        }
        (k, vec![h, i, j, kk, l, m, n])
    }

    #[test]
    fn label_all_reachability() {
        let (k, _) = figure6();
        // Not all traces reach s3 (only the path through I-K does).
        let phi = builders::reachability(Prop::switch(3));
        let (labeling, count) = Labeling::label_all(&k, &phi);
        assert_eq!(count, 7);
        assert!(!labeling.holds(&k));
        // All traces eventually reach *some* sink labeled 3..6: s3 | s4 | s5 | s6.
        let any = Ltl::eventually(Ltl::or_all((3..=6).map(|n| Ltl::prop(Prop::switch(n)))));
        let (labeling, _) = Labeling::label_all(&k, &any);
        assert!(labeling.holds(&k));
    }

    #[test]
    fn counterexample_extraction_reaches_a_sink() {
        let (k, ids) = figure6();
        let phi = builders::reachability(Prop::switch(3));
        let (labeling, _) = Labeling::label_all(&k, &phi);
        let (state, assignment) = labeling.violating_initial(&k).expect("violation");
        assert_eq!(state, ids[0]);
        let path = labeling.extract_path(&k, state, &assignment);
        assert!(path.len() >= 2);
        let last = *path.last().unwrap();
        assert!(k.is_sink(last));
        // The violating path must not go through K (s3).
        assert!(path.iter().all(|s| k.key(*s).switch != SwitchId(3)));
    }

    #[test]
    fn relabel_matches_full_relabel() {
        let (mut k, ids) = figure6();
        let phi = builders::reachability(Prop::switch(3));
        let (mut labeling, _) = Labeling::label_all(&k, &phi);
        // Redirect J to only reach N, as in the paper's Figure 6 example.
        let j = ids[2];
        let n = ids[6];
        k.set_successors(j, vec![n]);
        let relabeled = labeling.relabel(&k, &[j]);
        assert!(relabeled >= 1);
        let (fresh, _) = Labeling::label_all(&k, &phi);
        for state in k.states() {
            assert_eq!(labeling.label(state), fresh.label(state));
        }
    }

    #[test]
    fn relabel_stops_when_labels_do_not_change() {
        let (mut k, ids) = figure6();
        // Property "eventually reach an odd-labeled or even-labeled sink" that
        // is insensitive to which sink J points to.
        let phi = Ltl::eventually(Ltl::or_all((3..=6).map(|n| Ltl::prop(Prop::switch(n)))));
        let (mut labeling, _) = Labeling::label_all(&k, &phi);
        let j = ids[2];
        let n = ids[6];
        k.set_successors(j, vec![n]);
        let relabeled = labeling.relabel(&k, &[j]);
        // Only J itself needs recomputation: its label does not change, so the
        // propagation stops before reaching H.
        assert_eq!(relabeled, 1);
        assert!(labeling.holds(&k));
    }

    #[test]
    fn relabel_with_empty_change_set_is_free() {
        let (k, _) = figure6();
        let phi = builders::reachability(Prop::switch(3));
        let (mut labeling, _) = Labeling::label_all(&k, &phi);
        assert_eq!(labeling.relabel(&k, &[]), 0);
    }

    #[test]
    fn repeated_relabels_stay_consistent_under_compaction() {
        // Flip J's successors back and forth; span replacement and
        // compaction must preserve agreement with the from-scratch labeling.
        let (mut k, ids) = figure6();
        let phi = builders::reachability(Prop::switch(3));
        let (mut labeling, _) = Labeling::label_all(&k, &phi);
        let (j, m, n) = (ids[2], ids[5], ids[6]);
        for round in 0..64 {
            let target = if round % 2 == 0 { vec![n] } else { vec![m, n] };
            k.set_successors(j, target);
            labeling.relabel(&k, &[j]);
            let (fresh, _) = Labeling::label_all(&k, &phi);
            for state in k.states() {
                assert_eq!(labeling.label(state), fresh.label(state), "round {round}");
            }
        }
    }

    #[test]
    fn relabel_all_matches_label_all_across_specs_and_structures() {
        let (k, _) = figure6();
        let phi_a = builders::reachability(Prop::switch(3));
        let phi_b = Ltl::eventually(Ltl::or_all((3..=6).map(|n| Ltl::prop(Prop::switch(n)))));
        let (mut reused, _) = Labeling::label_all(&k, &phi_a);
        // Same structure, new spec: the recycled labeling must agree with a
        // fresh one.
        let relabeled = reused.relabel_all(&k, &phi_b);
        assert_eq!(relabeled, k.len());
        let (fresh, _) = Labeling::label_all(&k, &phi_b);
        for state in k.states() {
            assert_eq!(reused.label(state), fresh.label(state));
        }
        assert_eq!(reused.holds(&k), fresh.holds(&k));
        // Back to the first spec on a *different* structure (fewer states).
        let mut k2 = Kripke::new();
        let a = k2.add_state(key(0), label(0));
        let b = k2.add_state(key(3), label(3));
        k2.mark_initial(a);
        k2.add_transition(a, b);
        k2.add_transition(b, b);
        reused.relabel_all(&k2, &phi_a);
        let (fresh2, _) = Labeling::label_all(&k2, &phi_a);
        for state in k2.states() {
            assert_eq!(reused.label(state), fresh2.label(state));
        }
        assert!(reused.holds(&k2));
    }

    #[test]
    fn waypoint_labeling() {
        // Chain 0 -> 1 -> 2(sink): waypointing through s1 before s2 holds.
        let mut k = Kripke::new();
        let a = k.add_state(key(0), label(0));
        let b = k.add_state(key(1), label(1));
        let c = k.add_state(key(2), label(2));
        k.mark_initial(a);
        k.add_transition(a, b);
        k.add_transition(b, c);
        k.add_transition(c, c);
        let phi = builders::waypoint(Prop::switch(1), Prop::switch(2));
        let (labeling, _) = Labeling::label_all(&k, &phi);
        assert!(labeling.holds(&k));
        // Skipping the waypoint violates it.
        let mut k2 = Kripke::new();
        let a = k2.add_state(key(0), label(0));
        let c = k2.add_state(key(2), label(2));
        k2.mark_initial(a);
        k2.add_transition(a, c);
        k2.add_transition(c, c);
        let (labeling, _) = Labeling::label_all(&k2, &phi);
        assert!(!labeling.holds(&k2));
        let _ = b;
    }
}
