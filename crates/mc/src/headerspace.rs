//! A NetPlumber-style incremental header-space path checker.
//!
//! NetPlumber maintains, for designated probe nodes, the set of header-space
//! paths that can reach them, and updates those sets incrementally as rules
//! are inserted or removed. This backend reproduces that style of checking
//! over the network Kripke structure:
//!
//! * per initial state it maintains the set of forwarding paths (sequences of
//!   states) through the structure;
//! * properties are evaluated over those paths with the finite-trace LTL
//!   semantics;
//! * on [`recheck`](crate::ModelChecker::recheck) only the paths of initial
//!   states affected by the change are recomputed — an initial state is
//!   affected if one of its cached paths touches a changed state or if a
//!   changed state is reachable from it in the updated structure;
//! * like NetPlumber, it reports **no counterexamples**, which deprives the
//!   synthesizer of counterexample-based pruning when this backend is chosen
//!   (exactly the handicap discussed in the paper's evaluation).

use std::collections::HashMap;
use std::sync::Arc;

use netupd_kripke::{Kripke, StateId, StateSet};
use netupd_ltl::{cache as ltl_cache, Closure, Ltl, ResolvedProps};

use crate::checker::{CheckOutcome, CheckStats, CheckerSnapshot, ModelChecker};

/// Maximum number of distinct paths tracked per initial state. Network
/// configurations synthesized from the diamond workloads are far below this;
/// the cap only guards against pathological inputs.
const MAX_PATHS_PER_INGRESS: usize = 16_384;

/// NetPlumber-style incremental header-space path checker.
#[derive(Debug, Default)]
pub struct HeaderSpaceChecker {
    cache: Option<PathCache>,
    /// Per-instance closure/resolution for the current `(spec, table)` pair,
    /// so the steady-state evaluation path is lock-free: the process-wide
    /// `netupd_ltl::cache` is only consulted when the spec or table key
    /// changes.
    spec_cache: Option<SpecCache>,
    /// Set by [`ModelChecker::begin_query`]: the cached paths may no longer
    /// describe the structure, so the next query recomputes all of them
    /// (recycling the per-ingress map's storage).
    stale: bool,
}

#[derive(Debug, Clone)]
struct PathCache {
    /// Cached paths per initial state.
    paths: HashMap<StateId, Vec<Vec<StateId>>>,
    /// Number of states in the structure when the cache was built.
    states: usize,
}

impl PathCache {
    /// Estimated resident size of the cached paths, for snapshot budget
    /// accounting.
    fn approx_bytes(&self) -> usize {
        let states: usize = self
            .paths
            .values()
            .flat_map(|paths| paths.iter().map(Vec::len))
            .sum();
        states * std::mem::size_of::<StateId>() + self.paths.len() * 64
    }
}

#[derive(Debug)]
struct SpecCache {
    closure: Arc<Closure>,
    resolved: Arc<ResolvedProps>,
    /// The table key ([`netupd_ltl::PropTable::cache_key`]) the resolution
    /// was computed for.
    table_key: (u64, usize),
}

impl HeaderSpaceChecker {
    /// Creates a header-space checker with an empty cache.
    pub fn new() -> Self {
        HeaderSpaceChecker::default()
    }

    fn evaluate(&mut self, kripke: &Kripke, phi: &Ltl, stats: CheckStats) -> CheckOutcome {
        // Finite-trace semantics with final-state stuttering, evaluated
        // backward over each cached path directly against the interned state
        // labels — no label materialization per path. The closure and its
        // resolution are cached per instance and shared per (spec, table)
        // across the query stream via `netupd_ltl::cache`.
        let table_key = kripke.props().cache_key();
        let reusable = self
            .spec_cache
            .as_ref()
            .is_some_and(|c| c.table_key == table_key && c.closure.root() == phi);
        if !reusable {
            let closure = ltl_cache::shared_closure(phi);
            let resolved = ltl_cache::shared_resolution(&closure, kripke.props());
            self.spec_cache = Some(SpecCache {
                closure,
                resolved,
                table_key,
            });
        }
        let SpecCache {
            closure, resolved, ..
        } = self.spec_cache.as_ref().expect("refreshed above");
        let cache = self.cache.as_ref().expect("cache present");
        let holds = cache.paths.values().flatten().all(|path| {
            let Some((last, prefix)) = path.split_last() else {
                return true;
            };
            let mut assignment = closure.sink_assignment_interned(kripke.label(*last), resolved);
            for state in prefix.iter().rev() {
                assignment = closure.successor_assignment_interned(
                    kripke.label(*state),
                    &assignment,
                    resolved,
                );
            }
            closure.satisfies_root(&assignment)
        });
        if holds {
            CheckOutcome::success(stats)
        } else {
            // NetPlumber reports violations without counterexample traces.
            CheckOutcome::failure(None, stats)
        }
    }

    fn compute_paths(kripke: &Kripke, initial: StateId) -> Vec<Vec<StateId>> {
        let mut paths = Vec::new();
        let mut current = Vec::new();
        collect_paths(kripke, initial, &mut current, &mut paths);
        paths
    }
}

fn collect_paths(
    kripke: &Kripke,
    state: StateId,
    current: &mut Vec<StateId>,
    out: &mut Vec<Vec<StateId>>,
) {
    if out.len() >= MAX_PATHS_PER_INGRESS {
        return;
    }
    current.push(state);
    if kripke.is_sink(state) {
        out.push(current.clone());
    } else {
        for succ in kripke.successors(state) {
            if *succ != state {
                collect_paths(kripke, *succ, current, out);
            }
        }
    }
    current.pop();
}

impl ModelChecker for HeaderSpaceChecker {
    fn check(&mut self, kripke: &Kripke, phi: &Ltl) -> CheckOutcome {
        self.stale = false;
        // Recycle the previous cache's map storage for the full recompute.
        let mut paths = match self.cache.take() {
            Some(mut cache) => {
                cache.paths.clear();
                cache.paths
            }
            None => HashMap::new(),
        };
        let mut visited_states = 0;
        for initial in kripke.initial_states() {
            let ingress_paths = Self::compute_paths(kripke, initial);
            visited_states += ingress_paths.iter().map(Vec::len).sum::<usize>();
            paths.insert(initial, ingress_paths);
        }
        self.cache = Some(PathCache {
            paths,
            states: kripke.len(),
        });
        let stats = CheckStats {
            states_labeled: visited_states,
            total_states: kripke.len(),
            incremental: false,
        };
        self.evaluate(kripke, phi, stats)
    }

    fn recheck(&mut self, kripke: &Kripke, phi: &Ltl, changed: &[StateId]) -> CheckOutcome {
        if self.stale {
            return self.check(kripke, phi);
        }
        let Some(cache) = self.cache.as_ref() else {
            return self.check(kripke, phi);
        };
        if cache.states != kripke.len() {
            return self.check(kripke, phi);
        }
        let changed_set: StateSet = changed.iter().copied().collect();
        // Initial states whose forwarding can be affected: either a cached
        // path touches a changed state, or a changed state is reachable from
        // the initial state in the updated structure.
        let ancestors_of_changed = kripke.ancestors(changed);
        let affected: Vec<StateId> = cache
            .paths
            .iter()
            .filter(|(initial, paths)| {
                ancestors_of_changed.contains(**initial)
                    || paths
                        .iter()
                        .any(|p| p.iter().any(|s| changed_set.contains(*s)))
            })
            .map(|(initial, _)| *initial)
            .collect();

        let mut visited_states = 0;
        let mut updated_paths = Vec::with_capacity(affected.len());
        for initial in &affected {
            let ingress_paths = Self::compute_paths(kripke, *initial);
            visited_states += ingress_paths.iter().map(Vec::len).sum::<usize>();
            updated_paths.push((*initial, ingress_paths));
        }
        let cache = self.cache.as_mut().expect("cache present");
        for (initial, paths) in updated_paths {
            cache.paths.insert(initial, paths);
        }
        let stats = CheckStats {
            states_labeled: visited_states,
            total_states: kripke.len(),
            incremental: true,
        };
        self.evaluate(kripke, phi, stats)
    }

    fn begin_query(&mut self) {
        self.stale = true;
    }

    /// Captures the per-ingress path cache. The spec cache is not part of the
    /// snapshot: it is keyed by `(spec, table)` and revalidated on every
    /// evaluate, so it composes with any restored path set.
    fn snapshot(&self) -> Option<CheckerSnapshot> {
        if self.stale {
            return None;
        }
        let cache = self.cache.as_ref()?;
        let bytes = cache.approx_bytes();
        Some(CheckerSnapshot::new(cache.clone(), bytes))
    }

    fn restore(&mut self, snapshot: &CheckerSnapshot) -> bool {
        let Some(cache) = snapshot.downcast::<PathCache>() else {
            return false;
        };
        self.cache = Some(cache.clone());
        self.stale = false;
        true
    }

    fn name(&self) -> &'static str {
        "headerspace"
    }

    fn provides_counterexamples(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::IncrementalChecker;
    use netupd_kripke::NetworkKripke;
    use netupd_ltl::{builders, Prop};
    use netupd_model::prelude::*;

    fn line() -> (NetworkKripke, Configuration, SwitchId, HostId) {
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let s0 = topo.add_switch();
        let s1 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.add_duplex_link(s0, PortId(2), s1, PortId(1));
        topo.attach_host(h1, s1, PortId(2));
        let fwd = |port: u32| {
            Table::new(vec![Rule::new(
                Priority(1),
                Pattern::any().with_field(Field::Dst, 1),
                vec![Action::Forward(PortId(port))],
            )])
        };
        let config = Configuration::new()
            .with_table(s0, fwd(2))
            .with_table(s1, fwd(2));
        let class = TrafficClass::new().with_field(Field::Dst, 1);
        (NetworkKripke::new(topo, vec![class]), config, s0, h1)
    }

    #[test]
    fn agrees_with_incremental_but_gives_no_counterexamples() {
        let (encoder, config, s0, h1) = line();
        let mut kripke = encoder.encode(&config);
        let spec = builders::reachability(Prop::AtHost(h1));

        let mut hs = HeaderSpaceChecker::new();
        let mut inc = IncrementalChecker::new();
        assert_eq!(
            hs.check(&kripke, &spec).holds,
            inc.check(&kripke, &spec).holds
        );

        let changed = encoder.apply_switch_update(&mut kripke, s0, &Table::empty());
        let hs_out = hs.recheck(&kripke, &spec, &changed);
        let inc_out = inc.recheck(&kripke, &spec, &changed);
        assert_eq!(hs_out.holds, inc_out.holds);
        assert!(!hs_out.holds);
        assert!(
            hs_out.counterexample.is_none(),
            "NetPlumber-style backends give no traces"
        );
        assert!(inc_out.counterexample.is_some());
        assert!(hs_out.stats.incremental);
    }

    #[test]
    fn recheck_without_cache_falls_back_to_full_check() {
        let (encoder, config, _s0, h1) = line();
        let kripke = encoder.encode(&config);
        let spec = builders::reachability(Prop::AtHost(h1));
        let mut hs = HeaderSpaceChecker::new();
        let outcome = hs.recheck(&kripke, &spec, &[]);
        assert!(outcome.holds);
        assert!(!outcome.stats.incremental);
    }

    #[test]
    fn begin_query_forces_a_full_path_recompute() {
        let (encoder, config, s0, h1) = line();
        let mut kripke = encoder.encode(&config);
        let spec = builders::reachability(Prop::AtHost(h1));
        let mut hs = HeaderSpaceChecker::new();
        assert!(hs.check(&kripke, &spec).holds);
        // Mutate the structure out of band; without begin_query an empty
        // change set would recompute nothing and keep the stale verdict.
        encoder.reset_to(&mut kripke, &config.updated(s0, Table::empty()));
        hs.begin_query();
        let outcome = hs.recheck(&kripke, &spec, &[]);
        assert!(!outcome.stats.incremental);
        assert!(!outcome.holds);
    }

    #[test]
    fn unaffected_ingresses_are_not_recomputed() {
        let (encoder, config, s0, h1) = line();
        let kripke_before = encoder.encode(&config);
        let spec = builders::reachability(Prop::AtHost(h1));
        let mut hs = HeaderSpaceChecker::new();
        hs.check(&kripke_before, &spec);
        // Rechecking with an empty change set recomputes nothing.
        let outcome = hs.recheck(&kripke_before, &spec, &[]);
        assert_eq!(outcome.stats.states_labeled, 0);
        assert!(outcome.holds);
        let _ = s0;
    }
}
