//! The incremental model checker (the paper's §5 contribution).

use netupd_kripke::{Kripke, StateId};
use netupd_ltl::Ltl;

use crate::checker::{CheckOutcome, CheckStats, CheckerSnapshot, Counterexample, ModelChecker};
use crate::labeling::Labeling;

/// Incremental LTL checker for DAG-like Kripke structures.
///
/// The first [`check`](ModelChecker::check) labels the whole structure; each
/// subsequent [`recheck`](ModelChecker::recheck) relabels only the ancestors
/// of the states whose transitions changed, stopping as soon as labels stop
/// changing. The labeling is kept across calls, which is what makes the
/// synthesis loop fast: each switch update triggers one small relabeling
/// instead of a full model-checking run.
///
/// The checker is reusable across query series: a full re-check (a new spec,
/// a [`begin_query`](ModelChecker::begin_query) reset, or a changed state
/// space) recycles the labeling's span/backing storage instead of
/// reallocating it, and the cross-request path — recheck with an accurate
/// change set after the structure was synced by diff — keeps full
/// incrementality.
#[derive(Debug, Default)]
pub struct IncrementalChecker {
    state: Option<CheckerState>,
    /// Set by [`ModelChecker::begin_query`]: the cached labeling's *results*
    /// may no longer describe the structure, so the next query must relabel
    /// everything (while still recycling the labeling's storage).
    stale: bool,
}

#[derive(Debug, Clone)]
struct CheckerState {
    phi: Ltl,
    labeling: Labeling,
}

impl IncrementalChecker {
    /// Creates a checker with no cached labeling.
    pub fn new() -> Self {
        IncrementalChecker::default()
    }

    /// Discards any cached labeling (e.g. when the synthesizer backtracks to
    /// a configuration whose labeling is no longer available).
    pub fn reset(&mut self) {
        self.state = None;
        self.stale = false;
    }

    fn outcome(&self, kripke: &Kripke, stats: CheckStats) -> CheckOutcome {
        let state = self.state.as_ref().expect("labeling present");
        match state.labeling.violating_initial(kripke) {
            None => CheckOutcome::success(stats),
            Some((initial, assignment)) => {
                let path = state.labeling.extract_path(kripke, initial, &assignment);
                CheckOutcome::failure(Some(Counterexample::from_states(kripke, path)), stats)
            }
        }
    }
}

impl ModelChecker for IncrementalChecker {
    fn check(&mut self, kripke: &Kripke, phi: &Ltl) -> CheckOutcome {
        self.stale = false;
        let labeled = match &mut self.state {
            // Recycle the previous labeling's storage for the full relabel.
            Some(state) => {
                let labeled = state.labeling.relabel_all(kripke, phi);
                state.phi = phi.clone();
                labeled
            }
            None => {
                let (labeling, labeled) = Labeling::label_all(kripke, phi);
                self.state = Some(CheckerState {
                    phi: phi.clone(),
                    labeling,
                });
                labeled
            }
        };
        let stats = CheckStats {
            states_labeled: labeled,
            total_states: kripke.len(),
            incremental: false,
        };
        self.outcome(kripke, stats)
    }

    fn recheck(&mut self, kripke: &Kripke, phi: &Ltl, changed: &[StateId]) -> CheckOutcome {
        let can_reuse = !self.stale && self.state.as_ref().is_some_and(|s| s.phi == *phi);
        if !can_reuse {
            return self.check(kripke, phi);
        }
        let labeled = {
            let state = self.state.as_mut().expect("labeling present");
            state.labeling.relabel(kripke, changed)
        };
        let stats = CheckStats {
            states_labeled: labeled,
            total_states: kripke.len(),
            incremental: true,
        };
        self.outcome(kripke, stats)
    }

    fn begin_query(&mut self) {
        self.stale = true;
    }

    /// Captures the current labeling (and the spec it was computed for).
    /// A restore puts the checker exactly where this check series left it,
    /// so the next recheck is fully incremental from the snapshot's
    /// configuration.
    fn snapshot(&self) -> Option<CheckerSnapshot> {
        if self.stale {
            return None;
        }
        let state = self.state.as_ref()?;
        let bytes = state.labeling.approx_bytes();
        Some(CheckerSnapshot::new(state.clone(), bytes))
    }

    fn restore(&mut self, snapshot: &CheckerSnapshot) -> bool {
        let Some(state) = snapshot.downcast::<CheckerState>() else {
            return false;
        };
        self.state = Some(state.clone());
        self.stale = false;
        true
    }

    fn name(&self) -> &'static str {
        "incremental"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netupd_kripke::NetworkKripke;
    use netupd_ltl::{builders, Prop};
    use netupd_model::prelude::*;

    /// Two-switch line with a direct and an indirect path: h0 - s0 - s1 - h1.
    fn line() -> (NetworkKripke, Configuration, SwitchId, SwitchId, HostId) {
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let s0 = topo.add_switch();
        let s1 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.add_duplex_link(s0, PortId(2), s1, PortId(1));
        topo.attach_host(h1, s1, PortId(2));
        let fwd = |port: u32| {
            Table::new(vec![Rule::new(
                Priority(1),
                Pattern::any().with_field(Field::Dst, 1),
                vec![Action::Forward(PortId(port))],
            )])
        };
        let config = Configuration::new()
            .with_table(s0, fwd(2))
            .with_table(s1, fwd(2));
        let class = TrafficClass::new().with_field(Field::Dst, 1);
        (NetworkKripke::new(topo, vec![class]), config, s0, s1, h1)
    }

    #[test]
    fn check_then_incremental_recheck() {
        let (encoder, config, s0, _s1, h1) = line();
        let mut kripke = encoder.encode(&config);
        let spec = builders::reachability(Prop::AtHost(h1));
        let mut checker = IncrementalChecker::new();

        let first = checker.check(&kripke, &spec);
        assert!(first.holds);
        assert!(!first.stats.incremental);

        // Break forwarding at s0: the property should now fail, and the
        // recheck should touch only part of the structure.
        let changed = encoder.apply_switch_update(&mut kripke, s0, &Table::empty());
        let second = checker.recheck(&kripke, &spec, &changed);
        assert!(!second.holds);
        assert!(second.stats.incremental);
        assert!(second.stats.states_labeled <= kripke.len());
        let cex = second.counterexample.expect("counterexample");
        assert!(cex.switches.contains(&s0));
    }

    #[test]
    fn recheck_with_different_formula_falls_back_to_full_check() {
        let (encoder, config, _s0, _s1, h1) = line();
        let kripke = encoder.encode(&config);
        let mut checker = IncrementalChecker::new();
        let spec_a = builders::reachability(Prop::AtHost(h1));
        checker.check(&kripke, &spec_a);
        let spec_b = builders::no_drops();
        let outcome = checker.recheck(&kripke, &spec_b, &[]);
        assert!(!outcome.stats.incremental);
        assert!(outcome.holds);
    }

    #[test]
    fn recheck_without_prior_check_is_a_full_check() {
        let (encoder, config, _s0, _s1, h1) = line();
        let kripke = encoder.encode(&config);
        let mut checker = IncrementalChecker::new();
        let spec = builders::reachability(Prop::AtHost(h1));
        let outcome = checker.recheck(&kripke, &spec, &[]);
        assert!(outcome.holds);
        assert!(!outcome.stats.incremental);
    }

    #[test]
    fn begin_query_forces_a_full_relabel_with_recycled_storage() {
        let (encoder, config, s0, _s1, h1) = line();
        let mut kripke = encoder.encode(&config);
        let spec = builders::reachability(Prop::AtHost(h1));
        let mut checker = IncrementalChecker::new();
        checker.check(&kripke, &spec);
        // Mutate the structure out of band (no change set retained).
        encoder.reset_to(&mut kripke, &config.updated(s0, Table::empty()));
        checker.begin_query();
        let outcome = checker.recheck(&kripke, &spec, &[]);
        // Without begin_query an empty change set would relabel nothing and
        // the stale labels would still claim the property holds.
        assert!(!outcome.stats.incremental);
        assert_eq!(outcome.stats.states_labeled, kripke.len());
        assert!(!outcome.holds);
        // Subsequent rechecks are incremental again.
        let changed = encoder.apply_switch_update(&mut kripke, s0, &config.table(s0));
        assert!(checker.recheck(&kripke, &spec, &changed).stats.incremental);
    }

    #[test]
    fn reset_clears_cached_labels() {
        let (encoder, config, _s0, _s1, h1) = line();
        let kripke = encoder.encode(&config);
        let mut checker = IncrementalChecker::new();
        let spec = builders::reachability(Prop::AtHost(h1));
        checker.check(&kripke, &spec);
        checker.reset();
        let outcome = checker.recheck(&kripke, &spec, &[]);
        assert!(!outcome.stats.incremental);
    }
}
