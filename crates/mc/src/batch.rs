//! The batch checker: the labeling engine run from scratch on every query.

use netupd_kripke::{Kripke, StateId};
use netupd_ltl::Ltl;

use crate::checker::{CheckOutcome, CheckStats, CheckerSnapshot, Counterexample, ModelChecker};
use crate::labeling::Labeling;

/// Marker payload of the batch checker's trivial snapshots: every query
/// recomputes all labels, so there is no result state to capture.
#[derive(Debug)]
struct BatchSnapshot;

/// Non-incremental labeling checker (the paper's "Batch" baseline).
///
/// Identical labeling algorithm to [`crate::IncrementalChecker`], but every
/// call — including [`recheck`](ModelChecker::recheck) — relabels the whole
/// structure. Comparing the two isolates the benefit of incrementality.
///
/// The checker keeps one [`Labeling`] across calls purely as recycled
/// *storage*: every query still recomputes all labels from scratch (the
/// baseline's cost profile), but the span/backing vectors are reused instead
/// of reallocated, which matters when a long-lived engine funnels thousands
/// of queries through one instance.
#[derive(Debug, Default)]
pub struct BatchChecker {
    scratch: Option<Labeling>,
}

impl BatchChecker {
    /// Creates a batch checker.
    pub fn new() -> Self {
        BatchChecker::default()
    }
}

impl ModelChecker for BatchChecker {
    fn check(&mut self, kripke: &Kripke, phi: &Ltl) -> CheckOutcome {
        let labeled = match &mut self.scratch {
            Some(labeling) => labeling.relabel_all(kripke, phi),
            None => {
                let (labeling, labeled) = Labeling::label_all(kripke, phi);
                self.scratch = Some(labeling);
                labeled
            }
        };
        let labeling = self.scratch.as_ref().expect("labeling present");
        let stats = CheckStats {
            states_labeled: labeled,
            total_states: kripke.len(),
            incremental: false,
        };
        match labeling.violating_initial(kripke) {
            None => CheckOutcome::success(stats),
            Some((initial, assignment)) => {
                let path = labeling.extract_path(kripke, initial, &assignment);
                CheckOutcome::failure(Some(Counterexample::from_states(kripke, path)), stats)
            }
        }
    }

    fn recheck(&mut self, kripke: &Kripke, phi: &Ltl, _changed: &[StateId]) -> CheckOutcome {
        self.check(kripke, phi)
    }

    /// The batch walk ignores change sets entirely (every step is a full
    /// check anyway), so the override skips collecting and sorting them.
    fn check_sequence(
        &mut self,
        encoder: &netupd_kripke::NetworkKripke,
        kripke: &mut Kripke,
        phi: &Ltl,
        _carried: &[StateId],
        steps: &[crate::SequenceStep],
    ) -> crate::SequenceOutcome {
        let mut checks = 0;
        let mut states_labeled = 0;
        for (index, step) in steps.iter().enumerate() {
            encoder.apply_switch_update(kripke, step.switch, &step.table);
            let outcome = self.check(kripke, phi);
            checks += 1;
            states_labeled += outcome.stats.states_labeled;
            if !outcome.holds {
                return crate::SequenceOutcome {
                    first_failure: Some(index),
                    counterexample: outcome.counterexample,
                    steps_applied: index + 1,
                    checks,
                    states_labeled,
                };
            }
        }
        crate::SequenceOutcome {
            first_failure: None,
            counterexample: None,
            steps_applied: steps.len(),
            checks,
            states_labeled,
        }
    }

    /// The batch checker carries no result state between queries (the scratch
    /// labeling is storage only), so its snapshots are empty and restoring
    /// one is trivially correct.
    fn snapshot(&self) -> Option<CheckerSnapshot> {
        Some(CheckerSnapshot::new(BatchSnapshot, 0))
    }

    fn restore(&mut self, snapshot: &CheckerSnapshot) -> bool {
        snapshot.downcast::<BatchSnapshot>().is_some()
    }

    fn name(&self) -> &'static str {
        "batch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netupd_kripke::NetworkKripke;
    use netupd_ltl::{builders, Prop};
    use netupd_model::prelude::*;

    #[test]
    fn batch_checker_agrees_with_direct_labeling() {
        let mut topo = Topology::new();
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let s0 = topo.add_switch();
        topo.attach_host(h0, s0, PortId(1));
        topo.attach_host(h1, s0, PortId(2));
        let table = Table::new(vec![Rule::new(
            Priority(1),
            Pattern::any().with_in_port(PortId(1)),
            vec![Action::Forward(PortId(2))],
        )]);
        let config = Configuration::new().with_table(s0, table);
        let encoder = NetworkKripke::new(topo, vec![TrafficClass::new()]).with_ingress_hosts([h0]);
        let kripke = encoder.encode(&config);

        let mut checker = BatchChecker::new();
        let good = builders::reachability(Prop::AtHost(h1));
        assert!(checker.check(&kripke, &good).holds);
        let bad = builders::reachability(Prop::switch(99));
        let outcome = checker.check(&kripke, &bad);
        assert!(!outcome.holds);
        assert!(outcome.counterexample.is_some());
        // Recheck always relabels everything.
        let again = checker.recheck(&kripke, &good, &[]);
        assert_eq!(again.stats.states_labeled, kripke.len());
        assert!(!again.stats.incremental);
    }
}
