//! # netupd-mc
//!
//! Model-checking backends for network-update synthesis.
//!
//! The synthesis algorithm of *Efficient Synthesis of Network Updates*
//! (PLDI 2015) poses a long series of closely related model-checking
//! questions: "does this intermediate configuration satisfy the LTL
//! specification?". This crate provides the checkers the paper evaluates,
//! behind one [`ModelChecker`] trait:
//!
//! * [`IncrementalChecker`] — the paper's contribution (§5): states of the
//!   DAG-like Kripke structure are labeled with the sets of
//!   maximally-consistent subsets of `ecl(ϕ)` satisfied by some trace from
//!   the state; after a switch update only the ancestors of the changed
//!   states are relabeled, and relabeling stops early when a label does not
//!   change.
//! * [`BatchChecker`] — the same labeling engine run from scratch on every
//!   query (the paper's "Batch" baseline).
//! * [`ProductChecker`] — a monolithic explicit-state tableau-product
//!   checker that rebuilds an automaton-style product per query; it stands in
//!   for the external symbolic model checker (NuSMV) used in the paper's
//!   comparison, matching its cost profile: general-purpose, non-incremental,
//!   re-solves every query from scratch.
//! * [`HeaderSpaceChecker`] — a NetPlumber-style incremental header-space
//!   reachability checker: it tracks forwarding paths per traffic class,
//!   updates them incrementally, checks properties over the paths, and —
//!   like NetPlumber — does not produce counterexamples.
//!
//! ```
//! use netupd_kripke::NetworkKripke;
//! use netupd_ltl::{builders, Prop};
//! use netupd_mc::{IncrementalChecker, ModelChecker};
//! use netupd_model::prelude::*;
//!
//! let mut topo = Topology::new();
//! let h0 = topo.add_host();
//! let h1 = topo.add_host();
//! let s0 = topo.add_switch();
//! topo.attach_host(h0, s0, PortId(1));
//! topo.attach_host(h1, s0, PortId(2));
//! let table = Table::new(vec![Rule::new(
//!     Priority(1),
//!     Pattern::any().with_in_port(PortId(1)),
//!     vec![Action::Forward(PortId(2))],
//! )]);
//! let config = Configuration::new().with_table(s0, table);
//!
//! let encoder =
//!     NetworkKripke::new(topo, vec![TrafficClass::new()]).with_ingress_hosts([h0]);
//! let kripke = encoder.encode(&config);
//! let spec = builders::reachability(Prop::AtHost(h1));
//!
//! let mut checker = IncrementalChecker::new();
//! assert!(checker.check(&kripke, &spec).holds);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod checker;
pub mod headerspace;
pub mod incremental;
pub mod labeling;
pub mod product;

pub use batch::BatchChecker;
pub use checker::{
    Backend, CheckOutcome, CheckStats, CheckerSnapshot, Counterexample, ModelChecker,
    SequenceOutcome, SequenceStep,
};
pub use headerspace::HeaderSpaceChecker;
pub use incremental::IncrementalChecker;
pub use labeling::Labeling;
pub use product::ProductChecker;
