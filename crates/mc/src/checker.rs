//! The common interface implemented by every model-checking backend.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use netupd_kripke::{Kripke, NetworkKripke, StateId};
use netupd_ltl::Ltl;
use netupd_model::{SwitchId, Table};

/// An opaque, restorable snapshot of a backend's checker-visible state,
/// produced by [`ModelChecker::snapshot`] and consumed by
/// [`ModelChecker::restore`].
///
/// Snapshots are the currency of the synthesis core's prefix-checkpoint
/// cache: a node of the cache pairs a passing configuration with the
/// snapshot the checker took right after verifying it, so a later walk that
/// reaches the same configuration can restore the checker instead of
/// replaying rechecks. The payload is backend-private (`Any`-erased) and
/// shared by [`Arc`], so cloning a snapshot — the cache hands out clones on
/// every hit — is a pointer copy. `bytes` is the backend's estimate of the
/// payload's resident size, which the cache's LRU budget accounting uses;
/// it only needs to be proportional, not exact.
#[derive(Debug, Clone)]
pub struct CheckerSnapshot {
    data: Arc<dyn Any + Send + Sync>,
    bytes: usize,
}

impl CheckerSnapshot {
    /// Wraps a backend-private payload with its estimated resident size.
    pub fn new<T: Any + Send + Sync>(data: T, bytes: usize) -> Self {
        CheckerSnapshot {
            data: Arc::new(data),
            bytes,
        }
    }

    /// Borrows the payload as `T`, or `None` when the snapshot came from a
    /// different backend.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }

    /// The estimated resident size of the payload.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// A counterexample trace: a path through the Kripke structure from an
/// initial state that violates the specification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counterexample {
    /// The states along the violating path, starting from an initial state.
    pub states: Vec<StateId>,
    /// The switches visited along the path, in order and deduplicated.
    pub switches: Vec<SwitchId>,
}

impl Counterexample {
    /// Builds a counterexample from a state path, deriving the switch path
    /// from the Kripke structure's state keys.
    pub fn from_states(kripke: &Kripke, states: Vec<StateId>) -> Self {
        let mut switches = Vec::new();
        for state in &states {
            let sw = kripke.key(*state).switch;
            if switches.last() != Some(&sw) {
                switches.push(sw);
            }
        }
        switches.dedup();
        Counterexample { states, switches }
    }

    /// Number of states in the counterexample path.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the counterexample is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Counters describing the work a check performed, used by the benchmark
/// harness to report incrementality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Number of states whose label was (re)computed.
    pub states_labeled: usize,
    /// Number of states in the structure at the time of the check.
    pub total_states: usize,
    /// Whether this check reused labels from a previous check.
    pub incremental: bool,
}

/// The outcome of a model-checking query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Whether every trace from every initial state satisfies the
    /// specification.
    pub holds: bool,
    /// A violating trace, when the property does not hold and the backend
    /// supports counterexamples.
    pub counterexample: Option<Counterexample>,
    /// Work counters.
    pub stats: CheckStats,
}

impl CheckOutcome {
    /// A successful outcome.
    pub fn success(stats: CheckStats) -> Self {
        CheckOutcome {
            holds: true,
            counterexample: None,
            stats,
        }
    }

    /// A failed outcome, optionally with a counterexample.
    pub fn failure(counterexample: Option<Counterexample>, stats: CheckStats) -> Self {
        CheckOutcome {
            holds: false,
            counterexample,
            stats,
        }
    }
}

/// One step of a prefix-sequence verification: install `table` on `switch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceStep {
    /// The switch whose table the step replaces.
    pub switch: SwitchId,
    /// The table the step installs.
    pub table: Table,
}

/// The outcome of a prefix-sequence verification
/// ([`ModelChecker::check_sequence`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceOutcome {
    /// Index (into the step slice) of the first step after which the
    /// specification fails, or `None` if every prefix holds.
    pub first_failure: Option<usize>,
    /// A violating trace for the failing prefix, when the backend supports
    /// counterexamples.
    pub counterexample: Option<Counterexample>,
    /// Number of steps actually applied to the structure: `first_failure + 1`
    /// on failure, the full step count otherwise. The structure is left at
    /// the configuration those steps produce.
    pub steps_applied: usize,
    /// Model-checker queries issued (one per applied step).
    pub checks: usize,
    /// Total states (re)labeled across the walk.
    pub states_labeled: usize,
}

/// A model checker for DAG-like Kripke structures.
///
/// Backends may keep per-structure state (labels) between calls; the
/// synthesizer calls [`check`](ModelChecker::check) once for the initial
/// configuration and [`recheck`](ModelChecker::recheck) after each switch
/// update, passing the set of states whose transitions changed.
///
/// Checkers are `Send`: the parallel ordering search instantiates one checker
/// per worker thread, so backend state must not contain thread-bound shared
/// ownership (`Rc`/`RefCell`).
pub trait ModelChecker: Send {
    /// Checks `kripke` against `phi` from scratch.
    fn check(&mut self, kripke: &Kripke, phi: &Ltl) -> CheckOutcome;

    /// Re-checks after the outgoing transitions (or labels) of `changed`
    /// states were modified.
    ///
    /// The default implementation performs a full check; incremental backends
    /// override it.
    fn recheck(&mut self, kripke: &Kripke, phi: &Ltl, changed: &[StateId]) -> CheckOutcome {
        let _ = changed;
        self.check(kripke, phi)
    }

    /// Verifies an update sequence prefix by prefix, returning the first
    /// failing prefix (and its counterexample trace) in one call.
    ///
    /// The walk starts from whatever configuration `kripke` currently
    /// encodes: each step rewires the structure through the encoder's
    /// incremental [`apply_switch_update`](NetworkKripke::apply_switch_update)
    /// and re-checks over exactly the rewired states, so every backend
    /// verifies the sequence at its own incremental cost model (the
    /// incremental and header-space checkers relabel only affected states,
    /// batch and product pay a full check per step). `carried` is folded into
    /// the first step's change set — callers that synced the structure to the
    /// walk's starting configuration by diff (the engine's cross-request
    /// reuse, or a [`reset_to`](NetworkKripke::reset_to) re-point) pass the
    /// states that sync rewired, so no separate "establish the baseline"
    /// query is needed.
    ///
    /// On return the structure encodes the configuration after
    /// [`steps_applied`](SequenceOutcome::steps_applied) steps: all of them
    /// when every prefix holds, the failing prefix otherwise.
    fn check_sequence(
        &mut self,
        encoder: &NetworkKripke,
        kripke: &mut Kripke,
        phi: &Ltl,
        carried: &[StateId],
        steps: &[SequenceStep],
    ) -> SequenceOutcome {
        let mut carried: Vec<StateId> = carried.to_vec();
        let mut checks = 0;
        let mut states_labeled = 0;
        for (index, step) in steps.iter().enumerate() {
            let mut changed = std::mem::take(&mut carried);
            changed.extend(encoder.apply_switch_update(kripke, step.switch, &step.table));
            changed.sort_unstable();
            changed.dedup();
            let outcome = self.recheck(kripke, phi, &changed);
            checks += 1;
            states_labeled += outcome.stats.states_labeled;
            if !outcome.holds {
                return SequenceOutcome {
                    first_failure: Some(index),
                    counterexample: outcome.counterexample,
                    steps_applied: index + 1,
                    checks,
                    states_labeled,
                };
            }
        }
        SequenceOutcome {
            first_failure: None,
            counterexample: None,
            steps_applied: steps.len(),
            checks,
            states_labeled,
        }
    }

    /// Prepares the checker for a new query series whose relation to the
    /// previous one is unknown (e.g. the structure was rebuilt or mutated out
    /// of band): cached *results* from earlier queries must be discarded, but
    /// backing storage (labeling spans, path maps, atom-cache vectors) is
    /// recycled rather than dropped.
    ///
    /// After `begin_query`, the next [`recheck`](ModelChecker::recheck)
    /// behaves like a full [`check`](ModelChecker::check). Checkers that keep
    /// no cross-call result state (batch, product) need not override the
    /// default no-op. A long-lived engine that syncs structures *by diff* and
    /// rechecks with accurate change sets never needs to call this; it exists
    /// for resets where no change set is available.
    fn begin_query(&mut self) {}

    /// Captures the checker's result state for the structure/spec it last
    /// checked, to be [`restore`](ModelChecker::restore)d later when the same
    /// configuration is revisited.
    ///
    /// The conservative default returns `None`: a backend that opts out
    /// simply never restores, and callers fall back to recheck-from-diff
    /// (fold the skipped change sets into the next recheck's change set —
    /// the same mechanism cross-request diff sync already relies on).
    /// Stateless backends return a trivial snapshot; stateful ones capture
    /// whatever their next `recheck` would otherwise have to rebuild.
    fn snapshot(&self) -> Option<CheckerSnapshot> {
        None
    }

    /// Restores a snapshot previously taken by this backend on a structure
    /// encoding the same configuration, returning `true` on success.
    ///
    /// After a successful restore the checker behaves exactly as it did when
    /// the snapshot was taken: its next `recheck` with an accurate change set
    /// is fully incremental, with no pending staleness. Returning `false`
    /// (the conservative default, and the required answer for a foreign
    /// backend's snapshot) leaves the checker untouched.
    fn restore(&mut self, snapshot: &CheckerSnapshot) -> bool {
        let _ = snapshot;
        false
    }

    /// A short, stable backend name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Whether this backend can produce counterexamples. Backends that cannot
    /// (e.g. the header-space checker) put the synthesizer at the same
    /// disadvantage NetPlumber does in the paper.
    fn provides_counterexamples(&self) -> bool {
        true
    }
}

/// The backends available to the synthesizer and benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The incremental labeling checker (the paper's contribution).
    Incremental,
    /// The same labeling engine, run from scratch each call.
    Batch,
    /// The monolithic tableau-product checker (NuSMV stand-in).
    Product,
    /// The header-space reachability checker (NetPlumber stand-in).
    HeaderSpace,
}

impl Backend {
    /// All backends, in a stable order.
    pub const ALL: [Backend; 4] = [
        Backend::Incremental,
        Backend::Batch,
        Backend::Product,
        Backend::HeaderSpace,
    ];

    /// Instantiates the backend.
    ///
    /// Instantiation is cheap (no per-structure state is allocated until the
    /// first check), and every checker is `Send` (a supertrait of
    /// [`ModelChecker`]), so the parallel search gives every worker thread
    /// its own instance.
    pub fn instantiate(self) -> Box<dyn ModelChecker> {
        match self {
            Backend::Incremental => Box::new(crate::IncrementalChecker::new()),
            Backend::Batch => Box::new(crate::BatchChecker::new()),
            Backend::Product => Box::new(crate::ProductChecker::new()),
            Backend::HeaderSpace => Box::new(crate::HeaderSpaceChecker::new()),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Backend::Incremental => "incremental",
            Backend::Batch => "batch",
            Backend::Product => "product",
            Backend::HeaderSpace => "headerspace",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_display_and_instantiate() {
        for backend in Backend::ALL {
            let checker = backend.instantiate();
            assert!(!checker.name().is_empty());
            assert!(!backend.to_string().is_empty());
        }
    }

    #[test]
    fn outcome_constructors() {
        let ok = CheckOutcome::success(CheckStats::default());
        assert!(ok.holds);
        assert!(ok.counterexample.is_none());
        let bad = CheckOutcome::failure(None, CheckStats::default());
        assert!(!bad.holds);
    }
}
