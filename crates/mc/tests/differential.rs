//! Differential property tests for the interned labeling engine.
//!
//! Two oracles pin down the refactored representation:
//!
//! * **Trace semantics.** For random small scenarios, the `PropSet`-interned
//!   labeling must agree *state for state* with the finite-trace oracle in
//!   `netupd_ltl::semantics`: a state's label contains only satisfying
//!   assignments exactly when every simulator trace from that location
//!   satisfies the specification.
//! * **Incrementality.** After random sequences of switch updates (applies
//!   and reverts), [`Labeling::relabel`] must agree with a from-scratch
//!   [`Labeling::label_all`] on every state's assignment vector.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use netupd_kripke::{Kripke, NetworkKripke, StateRole};
use netupd_ltl::semantics;
use netupd_ltl::Ltl;
use netupd_mc::Labeling;
use netupd_model::{Configuration, HostId, Network, Topology, TrafficClass};
use netupd_topo::scenario::{diamond_scenario, PropertyKind};
use netupd_topo::{generators, UpdateScenario};

/// A deterministic small scenario for a seed: topology family, property
/// kind, and the diamond flow all derive from the seed.
fn scenario_for_seed(seed: u64) -> Option<UpdateScenario> {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = if seed.is_multiple_of(2) {
        generators::fat_tree(4)
    } else {
        generators::small_world(12, 4, 0.1, &mut rng)
    };
    let kind = match seed % 3 {
        0 => PropertyKind::Reachability,
        1 => PropertyKind::Waypoint,
        _ => PropertyKind::ServiceChain { length: 2 },
    };
    diamond_scenario(&graph, kind, &mut rng)
}

fn encoder_for(scenario: &UpdateScenario) -> NetworkKripke {
    let ingress: Vec<HostId> = scenario.pairs.iter().map(|p| p.src_host).collect();
    NetworkKripke::new(scenario.topology().clone(), scenario.classes()).with_ingress_hosts(ingress)
}

/// The trace oracle for one state: every simulator trace from the state's
/// switch/port location satisfies `spec`.
fn oracle_all_traces_satisfy(
    topology: &Topology,
    config: &Configuration,
    class: &TrafficClass,
    sw: netupd_model::SwitchId,
    pt: netupd_model::PortId,
    spec: &Ltl,
) -> bool {
    let net = Network::new(topology.clone(), config.clone());
    net.traces_from(sw, pt, class)
        .iter()
        .all(|t| semantics::satisfies(t, spec))
}

/// A state's label says the specification holds on all traces from it iff
/// every assignment in the label satisfies the root formula.
fn label_says_holds(labeling: &Labeling, state: netupd_kripke::StateId) -> bool {
    labeling
        .label(state)
        .iter()
        .all(|a| labeling.closure().satisfies_root(a))
}

fn assert_labelings_equal(a: &Labeling, b: &Labeling, kripke: &Kripke, context: &str) {
    for state in kripke.states() {
        assert_eq!(
            a.label(state),
            b.label(state),
            "{context}: label of {} diverged",
            kripke.key(state)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interned labeling agrees with the trace-semantics oracle on every
    /// arrival state, for both the initial and the final configuration.
    #[test]
    fn interned_labeling_matches_trace_oracle(seed in 0u64..64) {
        let Some(scenario) = scenario_for_seed(seed) else { return Ok(()); };
        let encoder = encoder_for(&scenario);
        for config in [&scenario.initial, &scenario.final_config] {
            let kripke = encoder.encode(config);
            let (labeling, _) = Labeling::label_all(&kripke, &scenario.spec);
            for state in kripke.states() {
                let key = kripke.key(state);
                // Egress states are not trace starting points; the oracle is
                // defined on arrival locations.
                if key.role != StateRole::Arrival {
                    continue;
                }
                let class = &scenario.classes()[key.class];
                let oracle = oracle_all_traces_satisfy(
                    scenario.topology(),
                    config,
                    class,
                    key.switch,
                    key.port,
                    &scenario.spec,
                );
                assert_eq!(
                    label_says_holds(&labeling, state),
                    oracle,
                    "seed {seed}: state {key} disagrees with the trace oracle"
                );
            }
        }
    }

    /// `relabel` agrees with `label_all` after random sequences of switch
    /// updates, including reverts, on every state's assignment vector.
    #[test]
    fn relabel_matches_label_all_after_random_updates(seed in 0u64..64) {
        let Some(scenario) = scenario_for_seed(seed) else { return Ok(()); };
        let encoder = encoder_for(&scenario);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ff_ee00);

        let mut kripke = encoder.encode(&scenario.initial);
        let (mut labeling, _) = Labeling::label_all(&kripke, &scenario.spec);

        // Random walk over configurations: each step applies one switch's
        // final table or reverts it to its initial table.
        let mut switches: Vec<_> = scenario.final_config.switches().collect();
        switches.shuffle(&mut rng);
        for round in 0..switches.len().min(8) {
            let sw = switches[round % switches.len()];
            let table = if rng.gen_bool(0.3) {
                scenario.initial.table(sw)
            } else {
                scenario.final_config.table(sw)
            };
            let changed = encoder.apply_switch_update(&mut kripke, sw, &table);
            labeling.relabel(&kripke, &changed);
            let (fresh, _) = Labeling::label_all(&kripke, &scenario.spec);
            assert_labelings_equal(
                &labeling,
                &fresh,
                &kripke,
                &format!("seed {seed}, round {round}, switch {sw}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `check_sequence` agrees with a step-by-step `recheck` walk — same
    /// first failing prefix, same verdict per prefix, structure left at the
    /// same configuration — for every backend.
    #[test]
    fn check_sequence_matches_stepwise_recheck(seed in 0u64..48) {
        let Some(scenario) = scenario_for_seed(seed) else { return Ok(()); };
        let encoder = encoder_for(&scenario);
        // The update steps: install each differing switch's final table, in
        // switch-id order. Intermediate prefixes may well violate the spec —
        // exactly the interesting case.
        let steps: Vec<netupd_mc::SequenceStep> = scenario
            .initial
            .differing_switches(&scenario.final_config)
            .into_iter()
            .map(|sw| netupd_mc::SequenceStep {
                switch: sw,
                table: scenario.final_config.table(sw),
            })
            .collect();
        for backend in netupd_mc::Backend::ALL {
            // One-call walk.
            let mut seq_kripke = encoder.encode(&scenario.initial);
            let mut seq_checker = backend.instantiate();
            seq_checker.check(&seq_kripke, &scenario.spec);
            let outcome = seq_checker.check_sequence(
                &encoder,
                &mut seq_kripke,
                &scenario.spec,
                &[],
                &steps,
            );
            // Step-by-step walk with a second instance.
            let mut kripke = encoder.encode(&scenario.initial);
            let mut checker = backend.instantiate();
            checker.check(&kripke, &scenario.spec);
            let mut expected_failure = None;
            for (index, step) in steps.iter().enumerate() {
                let changed = encoder.apply_switch_update(&mut kripke, step.switch, &step.table);
                let check = checker.recheck(&kripke, &scenario.spec, &changed);
                if !check.holds {
                    expected_failure = Some((index, check.counterexample));
                    break;
                }
            }
            match (&outcome.first_failure, &expected_failure) {
                (Some(k), Some((expected, cex))) => {
                    assert_eq!(k, expected, "seed {seed}, {backend}: failing prefix diverged");
                    assert_eq!(outcome.steps_applied, k + 1, "seed {seed}, {backend}");
                    assert_eq!(
                        &outcome.counterexample, cex,
                        "seed {seed}, {backend}: counterexample diverged"
                    );
                }
                (None, None) => {
                    assert_eq!(outcome.steps_applied, steps.len(), "seed {seed}, {backend}");
                }
                other => panic!("seed {seed}, {backend}: verdicts diverged: {other:?}"),
            }
            assert_eq!(outcome.checks, outcome.steps_applied, "seed {seed}, {backend}");
        }
    }
}
