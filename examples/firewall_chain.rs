//! Service chaining on a datacenter fabric: migrate a tenant's flow to a new
//! path while every packet keeps traversing the firewall and then the
//! intrusion-detection middlebox, in that order.
//!
//! The scenario is generated on a FatTree with the paper's diamond workload
//! generator; the synthesized sequence is then replayed on the
//! operational-semantics simulator with a live probe stream to demonstrate
//! that no probe is lost during the transition (Figure 2(a) methodology).
//!
//! Run with: `cargo run --example firewall_chain`

use netupd_synth::exec::{run_with_probes, ProbeExperiment};
use netupd_synth::{baselines, Synthesizer, UpdateProblem};
use netupd_topo::generators;
use netupd_topo::scenario::{diamond_scenario, PropertyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let graph = generators::fat_tree(4);
    let scenario = diamond_scenario(&graph, PropertyKind::ServiceChain { length: 2 }, &mut rng)
        .expect("fat-trees admit diamond scenarios");
    let problem = UpdateProblem::from_scenario(&scenario);

    let pair = &scenario.pairs[0];
    println!("Flow: {} -> {}", pair.src_host, pair.dst_host);
    println!("  initial path: {:?}", pair.initial_path);
    println!("  final path:   {:?}", pair.final_path);
    println!("  service chain: {:?}", pair.waypoints);
    println!("  specification: {}", problem.spec);

    let result = Synthesizer::new(problem.clone())
        .synthesize()
        .expect("an ordering update exists");
    println!(
        "\nSynthesized {} updates with {} waits:",
        result.commands.num_updates(),
        result.commands.num_waits()
    );
    for command in result.commands.iter() {
        println!("  {command}");
    }

    // Replay the synthesized update and the naive update with live probes.
    let experiment = ProbeExperiment::for_problem(&problem);
    let ordered = run_with_probes(&problem, &result.commands, &experiment).expect("simulation");
    let naive = run_with_probes(&problem, &baselines::naive_update(&problem), &experiment)
        .expect("simulation");
    println!("\nProbe delivery during the update:");
    println!(
        "  synthesized ordering: {}/{} probes delivered, {} dropped",
        ordered.total_received(),
        ordered.total_sent(),
        ordered.total_dropped()
    );
    println!(
        "  naive update:         {}/{} probes delivered, {} dropped",
        naive.total_received(),
        naive.total_sent(),
        naive.total_dropped()
    );
}
