//! Explaining infeasibility: *why* does no simple update order exist?
//!
//! A double-diamond workload (Figure 8(h)/(i)) moves two flows across the
//! same fabric in opposite directions: each flow needs its egress-side
//! switches updated before its ingress-side ones, and the two requirements
//! collide — at switch granularity no total order works. The synthesizer
//! reports `NoOrderingExists { proven_by_constraints: true }`, and the engine
//! keeps the *evidence* behind that verdict: the solver's assumption-based
//! unsat core, deletion-minimized to a conflicting constraint set in which
//! every member is derived from a concrete counterexample trace or failing
//! prefix, and dropping any single member would make the rest satisfiable.
//!
//! Run with: `cargo run --release --example explain_infeasible`

use netupd_synth::{Granularity, SearchStrategy, SynthesisOptions, UpdateEngine, UpdateProblem};
use netupd_topo::generators;
use netupd_topo::scenario::{double_diamond_scenario, PropertyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let graph = generators::fat_tree(4);
    let scenario = double_diamond_scenario(&graph, PropertyKind::Reachability, &mut rng)
        .expect("fat-tree topologies admit double diamonds");
    let problem = UpdateProblem::from_scenario(&scenario);
    println!(
        "double diamond on fat_tree(4): {} switches updating\n",
        problem.switches_to_update().len()
    );

    let options = SynthesisOptions::default().strategy(SearchStrategy::SatGuided);
    let mut engine = UpdateEngine::for_problem(&problem, options);
    let error = engine
        .solve(&problem)
        .expect_err("double diamonds have no switch-granularity order");
    println!("verdict: {error}\n");

    let explanation = engine
        .last_explanation()
        .expect("constraint-proven verdicts come with an explanation");
    print!("{explanation}");
    println!(
        "\n(proved in {} CEGIS iteration(s), {} learnt constraint(s), \
         core of {} after minimization)",
        explanation.stats.cegis_iterations,
        explanation.stats.sat_constraints,
        explanation.stats.unsat_core_size,
    );

    // The conflict is about switch-granularity atomicity, not the
    // configurations themselves: at rule granularity the flows' rules
    // decouple and the same request becomes solvable.
    let rule_options = SynthesisOptions::default()
        .strategy(SearchStrategy::SatGuided)
        .granularity(Granularity::Rule);
    let mut rule_engine = UpdateEngine::for_problem(&problem, rule_options);
    let update = rule_engine
        .solve(&problem)
        .expect("rule granularity decouples the flows");
    println!(
        "\nat rule granularity the request solves: {} commands ({} rule-level updates)",
        update.commands.len(),
        update.commands.num_updates(),
    );
}
