//! Quickstart: synthesize a correct update for the paper's Figure 1 example.
//!
//! The network initially routes traffic from H1 to H3 along the "red" path
//! T1-A1-C1-A3-T3; we want to shift it to the "green" path T1-A1-C2-A3-T3
//! (for example to take C1 down for maintenance) while never breaking
//! H1-to-H3 connectivity. Updating A1 before C2 would black-hole traffic;
//! the synthesizer finds the safe order automatically.
//!
//! Run with: `cargo run --example quickstart`

use netupd_ltl::{builders, Prop};
use netupd_model::Priority;
use netupd_synth::{Synthesizer, UpdateProblem};
use netupd_topo::{generators, NetworkGraph};

fn main() {
    // The Figure 1 topology: cores C1, C2; aggregations A1..A4; ToRs T1..T4.
    let (graph, cores, aggs, tors, hosts) = generators::figure1();
    let (h1, h3) = (hosts[0], hosts[2]);

    // Red path: T1 - A1 - C1 - A3 - T3; green path: T1 - A1 - C2 - A3 - T3.
    let red = vec![tors[0], aggs[0], cores[0], aggs[2], tors[2]];
    let green = vec![tors[0], aggs[0], cores[1], aggs[2], tors[2]];

    let class = NetworkGraph::class_to_host(h3);
    let initial = graph.compile_path(&red, h3, &class, Priority(10));
    let final_config = graph.compile_path(&green, h3, &class, Priority(10));

    // The invariant: traffic from H1 always reaches H3.
    let spec = builders::reachability(Prop::AtHost(h3));

    let problem = UpdateProblem::new(
        graph.topology().clone(),
        initial,
        final_config,
        vec![class],
        vec![h1],
        spec,
    );

    println!("Synthesizing an update from the red path to the green path...");
    match Synthesizer::new(problem).synthesize() {
        Ok(result) => {
            println!(
                "Found a correct update with {} switch updates and {} waits:",
                result.commands.num_updates(),
                result.commands.num_waits()
            );
            for command in result.commands.iter() {
                println!("  {command}");
            }
            println!(
                "Model-checker calls: {}, states relabeled: {}",
                result.stats.model_checker_calls, result.stats.states_relabeled
            );
        }
        Err(error) => println!("Synthesis failed: {error}"),
    }
}
