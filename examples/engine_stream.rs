//! Engine stream: serve a rolling-reconfiguration churn stream with one
//! long-lived `UpdateEngine`, and compare the work against fresh per-request
//! synthesis.
//!
//! A real controller does not issue one update — it issues a stream of
//! related updates over one topology. The engine keeps the Kripke encoder,
//! the structures, and the checker labelings alive across requests, syncing
//! them by diff from wherever the previous request ended; the committed
//! sequences are byte-identical to fresh synthesis (that is tested in
//! `tests/engine_differential.rs`), only the work shrinks.
//!
//! Run with: `cargo run --example engine_stream`

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use netupd_synth::{SynthesisOptions, Synthesizer, UpdateEngine, UpdateProblem};
use netupd_topo::generators;
use netupd_topo::scenario::{churn_scenarios, PropertyKind};

const STEPS: usize = 8;

fn main() {
    // A seeded churn stream: each step re-routes the same flow starting from
    // the previous step's final configuration.
    let mut rng = StdRng::seed_from_u64(42);
    let graph = generators::fat_tree(4);
    let scenarios = churn_scenarios(&graph, PropertyKind::Reachability, STEPS, &mut rng)
        .expect("fat-trees admit churn streams");
    let topology = Arc::new(graph.topology().clone());
    let problems: Vec<UpdateProblem> = scenarios
        .iter()
        .map(|s| UpdateProblem::from_scenario_shared(s, Arc::clone(&topology)))
        .collect();

    println!("Serving a {STEPS}-step churn stream over a fat-tree...");

    // One long-lived engine across the whole stream.
    let mut engine = UpdateEngine::for_problem(&problems[0], SynthesisOptions::default());
    let mut engine_relabeled = 0;
    let start = Instant::now();
    for (step, problem) in problems.iter().enumerate() {
        let update = engine.solve(problem).expect("churn steps are solvable");
        engine_relabeled += update.stats.states_relabeled;
        println!(
            "  step {step}: {} updates, {} waits, {} states relabeled",
            update.commands.num_updates(),
            update.commands.num_waits(),
            update.stats.states_relabeled
        );
    }
    let engine_elapsed = start.elapsed();

    // The same stream with a fresh synthesizer per request.
    let mut fresh_relabeled = 0;
    let start = Instant::now();
    for problem in &problems {
        let update = Synthesizer::new(problem.clone())
            .synthesize()
            .expect("churn steps are solvable");
        fresh_relabeled += update.stats.states_relabeled;
    }
    let fresh_elapsed = start.elapsed();

    println!(
        "Engine reuse: {engine_relabeled} states relabeled in {:.2} ms \
         ({} requests served, {} rebuilds)",
        engine_elapsed.as_secs_f64() * 1e3,
        engine.requests_served(),
        engine.rebuilds()
    );
    println!(
        "Fresh per request: {fresh_relabeled} states relabeled in {:.2} ms",
        fresh_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "Reuse cut relabeling by {:.0}% — with byte-identical update sequences.",
        100.0 * (1.0 - engine_relabeled as f64 / fresh_relabeled.max(1) as f64)
    );
}
