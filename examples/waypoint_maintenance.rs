//! The paper's §2 "red to blue" scenario: shift traffic from the red path
//! T1-A1-C1-A3-T3 to the blue path T1-A2-C1-A4-T3 while (a) preserving
//! H1-to-H3 connectivity and (b) making sure every packet traverses one of
//! the scrubbing middleboxes A2 or A3.
//!
//! A fully consistent update does not exist for this transition, but an
//! ordering update does once the property is relaxed to "visit A2 or A3";
//! the synthesized sequence needs one `wait` (between updating T1 and C1),
//! and the wait-removal pass eliminates the rest.
//!
//! Run with: `cargo run --example waypoint_maintenance`

use netupd_ltl::{builders, Ltl, Prop};
use netupd_model::Priority;
use netupd_synth::{Synthesizer, UpdateProblem};
use netupd_topo::{generators, NetworkGraph};

fn main() {
    let (graph, cores, aggs, tors, hosts) = generators::figure1();
    let (h1, h3) = (hosts[0], hosts[2]);

    // Red path: T1 - A1 - C1 - A3 - T3; blue path: T1 - A2 - C1 - A4 - T3.
    let red = vec![tors[0], aggs[0], cores[0], aggs[2], tors[2]];
    let blue = vec![tors[0], aggs[1], cores[0], aggs[3], tors[2]];

    let class = NetworkGraph::class_to_host(h3);
    let initial = graph.compile_path(&red, h3, &class, Priority(10));
    let final_config = graph.compile_path(&blue, h3, &class, Priority(10));

    // Connectivity plus "every packet visits A2 or A3" (the middleboxes).
    let spec = Ltl::and(
        builders::reachability(Prop::AtHost(h3)),
        builders::one_of_waypoints(
            &[Prop::Switch(aggs[1]), Prop::Switch(aggs[2])],
            Prop::AtHost(h3),
        ),
    );

    let problem = UpdateProblem::new(
        graph.topology().clone(),
        initial,
        final_config,
        vec![class],
        vec![h1],
        spec,
    );

    println!("Synthesizing the red -> blue update with middlebox traversal...");
    match Synthesizer::new(problem).synthesize() {
        Ok(result) => {
            println!(
                "Correct update found: {} switch updates, {} waits kept after wait removal",
                result.commands.num_updates(),
                result.commands.num_waits()
            );
            for command in result.commands.iter() {
                println!("  {command}");
            }
        }
        Err(error) => println!("Synthesis failed: {error}"),
    }
}
