//! The parallel ordering search: same result, distributed checking.
//!
//! `SynthesisOptions::threads(n)` fans candidate orderings out across `n`
//! workers, each owning its own model-checker instance, with a shared
//! counterexample prune-set cutting every worker's speculative frontier.
//! The scheduler commits exactly the sequence the single-threaded search
//! returns — the thread count is purely a performance knob — so this
//! example runs both and verifies they agree, then compares the work
//! counters.
//!
//! Run with: `cargo run --release --example parallel_search`

use std::time::Instant;

use netupd_mc::Backend;
use netupd_synth::{SynthesisOptions, Synthesizer, UpdateProblem, UpdateSequence};
use netupd_topo::generators;
use netupd_topo::scenario::{multi_diamond_scenario, PropertyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(problem: &UpdateProblem, threads: usize) -> (UpdateSequence, f64) {
    let options = SynthesisOptions::with_backend(Backend::Incremental).threads(threads);
    let start = Instant::now();
    let result = Synthesizer::new(problem.clone())
        .with_options(options)
        .synthesize()
        .expect("the multi-diamond scenario has an ordering update");
    (result, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    // A scalability-style workload: four flows moving at once on a
    // 100-switch Small-World topology, waypointing preserved throughout.
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::small_world(100, 4, 0.1, &mut rng);
    let scenario = multi_diamond_scenario(&graph, PropertyKind::Waypoint, 4, &mut rng)
        .expect("small-world topologies admit diamonds");
    let problem = UpdateProblem::from_scenario(&scenario);
    println!(
        "{} switches, {} updating; synthesizing with 1 and 4 worker threads...\n",
        graph.num_switches(),
        problem.switches_to_update().len()
    );

    let (sequential, t_seq) = run(&problem, 1);
    let (parallel, t_par) = run(&problem, 4);

    assert_eq!(
        sequential.commands, parallel.commands,
        "the parallel search must commit the sequential result"
    );
    assert_eq!(sequential.order, parallel.order);
    println!(
        "threads(1): {:>7.2} ms, {} model-checker calls",
        t_seq, sequential.stats.model_checker_calls
    );
    println!(
        "threads(4): {:>7.2} ms, {} model-checker calls, per worker {:?}",
        t_par, parallel.stats.model_checker_calls, parallel.stats.checks_per_worker
    );
    println!(
        "\nIdentical {}-update sequence from both searches.",
        parallel.commands.num_updates()
    );
    println!(
        "(On a single-core host the scheduler degrades to inline mode and the\n\
         gain comes from restore elimination; with cores available it also\n\
         overlaps speculative checks — see DESIGN.md §5.)"
    );
}
