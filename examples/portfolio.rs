//! The DFS/SAT portfolio: race both strategies, pay only the cheaper one.
//!
//! `SearchStrategy::Portfolio` steps the DFS and the SAT-guided CEGIS loop
//! in lockstep, always advancing the lane with the smaller *charged* budget
//! (the deterministic sequential-equivalent cost every strategy accounts in
//! `SynthStats::charged_calls`), and commits the lane that finishes with
//! the smaller charge — ties go to the DFS. Which strategy is cheaper
//! varies by instance (the DFS wins when its greedy line succeeds almost
//! immediately; the CEGIS loop wins when a few learnt constraints pin the
//! order down), and the portfolio never has to guess: its charged budget is
//! the minimum of the two by construction. Because the race is decided by
//! budget order, never wall clock, the result is byte-identical at every
//! thread count.
//!
//! Run with: `cargo run --release --example portfolio`

use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthesisOptions, Synthesizer, UpdateProblem, UpdateSequence};
use netupd_topo::generators;
use netupd_topo::scenario::{diamond_scenario, multi_diamond_scenario, PropertyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(problem: &UpdateProblem, strategy: SearchStrategy) -> UpdateSequence {
    let options = SynthesisOptions::with_backend(Backend::Incremental).strategy(strategy);
    Synthesizer::new(problem.clone())
        .with_options(options)
        .synthesize()
        .unwrap_or_else(|e| panic!("{strategy} failed: {e}"))
}

fn race(name: &str, problem: &UpdateProblem) {
    println!(
        "{name}: {} updating switch(es)",
        problem.switches_to_update().len()
    );
    for strategy in SearchStrategy::ALL {
        let result = run(problem, strategy);
        print!(
            "{strategy:>10}: {} commands, charged budget {}, {} real checker call(s)",
            result.commands.len(),
            result.stats.charged_calls,
            result.stats.model_checker_calls,
        );
        if strategy == SearchStrategy::Portfolio {
            print!(
                " — dfs lane charged {}, sat lane charged {}",
                result.stats.portfolio_dfs_budget, result.stats.portfolio_sat_budget,
            );
        }
        println!();
    }
    println!();
}

fn main() {
    // A small reachability diamond: both lanes finish within a few charged
    // calls of each other, so the race costs the loser almost nothing.
    let mut rng = StdRng::seed_from_u64(2024);
    let graph = generators::fat_tree(4);
    let scenario = diamond_scenario(&graph, PropertyKind::Reachability, &mut rng)
        .expect("fat-trees admit diamond scenarios");
    race(
        "reachability diamond",
        &UpdateProblem::from_scenario(&scenario),
    );

    // Several waypointed flows moving at once: enough ordering conflicts
    // that the SAT-guided lane's learnt constraints pay off and it often
    // finishes on the smaller charged budget.
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::small_world(60, 4, 0.1, &mut rng);
    let scenario = multi_diamond_scenario(&graph, PropertyKind::Waypoint, 3, &mut rng)
        .expect("small-world topologies admit diamonds");
    race(
        "multi-flow waypoint",
        &UpdateProblem::from_scenario(&scenario),
    );

    println!(
        "the portfolio's charged budget is min(dfs, sat-guided) on every \
         instance — the race is decided by budget order, so the winner (and \
         every statistic) is identical at every thread count"
    );
}
