//! Serve stream: run a multi-tenant churn workload through the
//! `netupd-serve` worker fleet and read the serving metrics.
//!
//! Eight tenants each roll through a three-step reconfiguration of their own
//! flow on one shared fat-tree. The server multiplexes them over a bounded
//! worker fleet with one long-lived engine per tenant (pooled, LRU-evicted
//! under a cap), preserving per-tenant FIFO — so every committed sequence is
//! byte-identical to fresh per-request synthesis (that is tested in
//! `tests/serve_differential.rs`), while the fleet overlaps tenants and the
//! engines amortize work within each tenant's stream.
//!
//! Run with: `cargo run --example serve_stream`

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use netupd_serve::{EngineUse, ServeConfig, TenantId, UpdateServer};
use netupd_synth::UpdateProblem;
use netupd_topo::generators;
use netupd_topo::scenario::{multi_tenant_churn_streams, PropertyKind};

const TENANTS: usize = 8;
const STEPS: usize = 3;

fn main() {
    // A seeded multi-tenant workload: each tenant gets its own chained churn
    // stream over the shared topology.
    let mut rng = StdRng::seed_from_u64(42);
    let graph = generators::fat_tree(4);
    let streams =
        multi_tenant_churn_streams(&graph, PropertyKind::Reachability, TENANTS, STEPS, &mut rng)
            .expect("fat-trees admit churn streams");
    let topology = Arc::new(graph.topology().clone());

    println!("Serving {TENANTS} tenants x {STEPS} churn steps over one fat-tree...");
    let server = UpdateServer::start(
        ServeConfig::default()
            .worker_threads(4)
            .shards(4)
            .engines_per_shard(4),
    );

    // Submit round-robin by step, as concurrent tenant streams would arrive,
    // then wait for every response.
    let start = Instant::now();
    let mut handles = Vec::new();
    for step in 0..STEPS {
        for (t, stream) in streams.iter().enumerate() {
            let problem = UpdateProblem::from_scenario_shared(&stream[step], Arc::clone(&topology));
            let handle = server
                .submit(TenantId(t as u64), problem)
                .expect("default limits admit this workload");
            handles.push((t, step, handle));
        }
    }
    for (tenant, step, handle) in handles {
        let outcome = handle.wait();
        let update = outcome.result.expect("churn steps are solvable");
        println!(
            "  tenant {tenant} step {step}: {} commands, engine {}, wait {:?}, service {:?}",
            update.commands.num_updates(),
            match outcome.metrics.engine {
                EngineUse::Hit => "hit ",
                EngineUse::Miss => "miss",
            },
            outcome.metrics.queue_wait,
            outcome.metrics.service_time,
        );
    }
    let wall = start.elapsed();

    let metrics = server.shutdown();
    let requests = TENANTS * STEPS;
    println!("\nServed {requests} requests in {wall:?}");
    println!(
        "  throughput        {:.0} req/s",
        requests as f64 / wall.as_secs_f64()
    );
    println!(
        "  engine pool       {} hits / {} misses / {} evicted",
        metrics.engine_hits, metrics.engine_misses, metrics.engines_evicted
    );
    println!(
        "  queue wait        p50 {:?}  p99 {:?}",
        metrics.queue_wait.p50, metrics.queue_wait.p99
    );
    println!(
        "  service time      p50 {:?}  p99 {:?}",
        metrics.service_time.p50, metrics.service_time.p99
    );
}
