//! The SAT-guided (CEGIS) ordering strategy, side by side with the DFS.
//!
//! `SearchStrategy::SatGuided` completes the §4.2 B machinery into a
//! counterexample-guided loop: the incremental SAT solver *proposes* a total
//! order consistent with every precedence constraint learnt so far, the
//! configured backend verifies the candidate sequence prefix by prefix in
//! one first-failing-prefix call, and the failure is learnt back as a new
//! clause — until a model verifies (success) or the clause set goes
//! unsatisfiable (no simple order exists). Where the DFS pays two checks per
//! backtrack (the failed candidate plus the label restore), the SAT-guided
//! loop pays one check per walked prefix — on workloads where a few learnt
//! constraints pin the order down, it needs markedly fewer model-checker
//! calls.
//!
//! Run with: `cargo run --release --example sat_guided`

use netupd_mc::Backend;
use netupd_synth::{SearchStrategy, SynthesisOptions, Synthesizer, UpdateProblem, UpdateSequence};
use netupd_topo::generators;
use netupd_topo::scenario::{multi_diamond_scenario, PropertyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(problem: &UpdateProblem, strategy: SearchStrategy) -> UpdateSequence {
    let options = SynthesisOptions::with_backend(Backend::Incremental).strategy(strategy);
    Synthesizer::new(problem.clone())
        .with_options(options)
        .synthesize()
        .unwrap_or_else(|e| panic!("{strategy} failed: {e}"))
}

fn main() {
    // Several flows moving at once: enough ordering conflicts that both
    // strategies have real work to do.
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::small_world(60, 4, 0.1, &mut rng);
    let scenario = multi_diamond_scenario(&graph, PropertyKind::Waypoint, 3, &mut rng)
        .expect("small-world topologies admit diamonds");
    let problem = UpdateProblem::from_scenario(&scenario);
    println!(
        "{} switches, {} updating\n",
        graph.num_switches(),
        problem.switches_to_update().len()
    );

    for strategy in SearchStrategy::ALL {
        let result = run(&problem, strategy);
        println!(
            "{strategy:>10}: {} commands ({} waits), {} model-checker calls, \
             {} backtracks, {} SAT constraints ({} conflicts, {} clauses)",
            result.commands.len(),
            result.stats.waits_after_removal,
            result.stats.model_checker_calls,
            result.stats.backtracks,
            result.stats.sat_constraints,
            result.stats.sat_conflicts,
            result.stats.sat_clauses,
        );
        if strategy == SearchStrategy::SatGuided {
            println!(
                "{:>10}  CEGIS converged in {} propose→verify→learn iteration(s)",
                "", result.stats.cegis_iterations
            );
        }
    }

    // Both strategies must agree that an order exists; the orders themselves
    // may differ — each is independently verified against the specification.
    let dfs = run(&problem, SearchStrategy::Dfs);
    let sat = run(&problem, SearchStrategy::SatGuided);
    println!(
        "\nverdicts agree; orders {} ({} vs {} commands)",
        if dfs.commands == sat.commands {
            "coincide"
        } else {
            "differ (both verified)"
        },
        dfs.commands.len(),
        sat.commands.len(),
    );
}
