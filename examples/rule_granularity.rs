//! Infeasibility and rule granularity: the "double diamond" workload of
//! Figure 8(h)/(i).
//!
//! Two flows swap paths in opposite directions. At switch granularity the
//! crossed ordering requirements are contradictory and the synthesizer
//! reports that no ordering update exists (using its SAT-based early
//! termination). At rule granularity — where each rule addition or removal
//! is ordered individually — the same transition is solvable.
//!
//! Run with: `cargo run --example rule_granularity`

use netupd_synth::{Granularity, SynthesisOptions, Synthesizer, UpdateProblem};
use netupd_topo::generators;
use netupd_topo::scenario::{double_diamond_scenario, PropertyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let graph = generators::fat_tree(4);
    let scenario = double_diamond_scenario(&graph, PropertyKind::Reachability, &mut rng)
        .expect("double diamond");
    let problem = UpdateProblem::from_scenario(&scenario);

    println!(
        "Two flows swapping paths: {} switches must change tables.",
        problem.switches_to_update().len()
    );

    println!("\nAttempting switch-granularity synthesis...");
    match Synthesizer::new(problem.clone()).synthesize() {
        Ok(result) => println!(
            "  unexpectedly solved with {} updates",
            result.commands.num_updates()
        ),
        Err(error) => println!("  {error}"),
    }

    println!("\nAttempting rule-granularity synthesis...");
    let options = SynthesisOptions::default().granularity(Granularity::Rule);
    match Synthesizer::new(problem).with_options(options).synthesize() {
        Ok(result) => {
            println!(
                "  solved with {} rule-level updates and {} waits:",
                result.commands.num_updates(),
                result.commands.num_waits()
            );
            for unit in &result.order {
                println!("    {}", unit.describe());
            }
        }
        Err(error) => println!("  rule granularity also failed: {error}"),
    }
}
