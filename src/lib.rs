//! # netupd
//!
//! Umbrella crate for the netupd workspace, a Rust reproduction of
//! *Efficient Synthesis of Network Updates* (McClurg, Hojjat, Černý,
//! Foster — PLDI 2015).
//!
//! The system takes an initial and a final network configuration plus an LTL
//! correctness property, and synthesizes an ordering of per-switch updates
//! (with `wait` barriers) such that **every** intermediate configuration
//! encountered during the transition satisfies the property — or reports
//! that no such ordering exists.
//!
//! Each layer lives in its own crate; this crate re-exports them under short
//! module names and owns the workspace-level integration tests (`tests/`)
//! and runnable walkthroughs (`examples/`):
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `netupd-model` | packets, rules, tables, topologies, command language, operational semantics |
//! | [`ltl`] | `netupd-ltl` | LTL formulas in NNF, parser, closure construction, trace semantics |
//! | [`topo`] | `netupd-topo` | topology generators and update-scenario builders |
//! | [`kripke`] | `netupd-kripke` | Kripke structures over intermediate configurations |
//! | [`mc`] | `netupd-mc` | incremental model checking + header-space baseline backend |
//! | [`sat`] | `netupd-sat` | incremental CDCL SAT solver with assumptions |
//! | [`synth`] | `netupd-synth` | counterexample-guided synthesis core |
//! | [`serve`] | `netupd-serve` | multi-tenant serving layer: engine pool, worker fleet, admission control |
//! | [`mod@bench`] | `netupd-bench` | paper-figure workloads and timing helpers |
//!
//! # Quickstart
//!
//! Synthesize a correct update ordering for a generated diamond scenario:
//!
//! ```
//! use netupd::synth::{Synthesizer, UpdateProblem};
//! use netupd::topo::generators;
//! use netupd::topo::scenario::{diamond_scenario, PropertyKind};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let graph = generators::small_world(40, 4, 0.1, &mut rng);
//! let scenario = diamond_scenario(&graph, PropertyKind::Reachability, &mut rng)
//!     .expect("scenario generation succeeds");
//! let problem = UpdateProblem::from_scenario(&scenario);
//!
//! let update = Synthesizer::new(problem)
//!     .synthesize()
//!     .expect("a correct ordering exists for the diamond scenario");
//! assert!(update.commands.num_updates() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use netupd_bench as bench;
pub use netupd_kripke as kripke;
pub use netupd_ltl as ltl;
pub use netupd_mc as mc;
pub use netupd_model as model;
pub use netupd_sat as sat;
pub use netupd_serve as serve;
pub use netupd_synth as synth;
pub use netupd_topo as topo;
