//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The netupd workspace builds in environments without network access to a
//! crates registry, so external dependencies are vendored as minimal
//! re-implementations. No code in the workspace serializes values at runtime
//! yet; the `#[derive(Serialize, Deserialize)]` attributes on the model types
//! document which types form the (future) wire format. This shim therefore
//! provides:
//!
//! - [`Serialize`] / [`Deserialize`] as marker traits with blanket impls, and
//! - no-op derive macros of the same names behind the `derive` feature,
//!
//! so `use serde::{Deserialize, Serialize};` plus the derives compile
//! unchanged, and swapping in the real `serde` later is a one-line
//! `Cargo.toml` change.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
