//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The netupd workspace builds without network access to a crates registry,
//! so external dependencies are vendored as minimal re-implementations. This
//! shim keeps the `criterion` 0.5 surface the benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] builder methods,
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — but replaces the statistical machinery with a
//! simple warm-up + fixed-sample wall-clock loop that prints
//! `name  time: [min mean max]` lines.
//!
//! The numbers are honest medians-of-few, good enough for the order-of-
//! magnitude comparisons the paper figures make (Incremental vs HeaderSpace,
//! ordering vs two-phase). Swapping in the real `criterion` later is a
//! one-line `Cargo.toml` change; no bench source needs to change.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(String::new());
        group.run(name.to_string(), &mut f);
        drop(group);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time spent warming up before sampling.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target time budget for the sampling loop.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `f`, passing it `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.0;
        self.run(label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().0;
        self.run(label, &mut f);
        self
    }

    /// Marks the group as complete. (All reporting is done eagerly.)
    pub fn finish(self) {}

    fn run(&mut self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            label
        } else {
            format!("{}/{}", self.name, label)
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
    }
}

/// Timing context passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up pass, then up to `sample_size` timed
    /// samples or until the measurement budget is exhausted, whichever comes
    /// first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Sampling.
        let budget_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Identifier for a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<60} time: [no samples]");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<60} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // minimal harness has no CLI and ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, n| {
            b.iter(|| {
                ran += 1;
                *n * 2
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
