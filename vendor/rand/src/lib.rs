//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The netupd workspace builds in environments without network access to a
//! crates registry, so the handful of external dependencies are vendored as
//! minimal re-implementations of exactly the API surface the workspace uses.
//!
//! This crate provides the `rand` 0.8 subset needed by the topology
//! generators, scenario builders, and benchmarks:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256** generator,
//! - [`SeedableRng::seed_from_u64`] — splitmix64 seeding,
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! - [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Determinism is a feature here, not a limitation: every generator in the
//! workspace is seeded explicitly so that scenarios, tests, and benches are
//! reproducible across runs and machines.
//!
//! ```
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: u64 = rng.gen_range(0..10);
//! assert!(x < 10);
//! let p = rng.gen::<f64>();
//! assert!((0.0..1.0).contains(&p));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits from the generator.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
///
/// This plays the role of `rand`'s `Standard` distribution: `rng.gen::<T>()`
/// is available for every `T: Standard`.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is negligible for the small spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods on random generators.
pub trait Rng: RngCore {
    /// Draws a value of type `T` via the [`Standard`] distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// splitmix64. Not cryptographically secure, and does not need to be.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            self.state = [s0, s1, s2, s3.rotate_left(45)];
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait adding random shuffling and choice to slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
