//! The [`Arbitrary`] trait and the [`any`] entry point.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical "anything goes" strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A`, mirroring `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy generating `true`/`false` with equal probability.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy generating a uniformly random integer over the full value range.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;

            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let strat = any::<bool>();
        let mut saw = (false, false);
        for _ in 0..64 {
            match strat.generate(&mut rng) {
                true => saw.0 = true,
                false => saw.1 = true,
            }
        }
        assert!(saw.0 && saw.1);
    }
}
