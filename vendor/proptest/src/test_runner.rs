//! Test-runner configuration and errors, mirroring `proptest::test_runner`.

use std::fmt;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case. Carries the assertion message; unlike real
/// proptest there is no shrinking, so no minimized input is attached.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    // Exercise the full macro pipeline, config form included.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_pairs_satisfy_bounds(a in 0u32..10, b in 5usize..9) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b), "b out of range: {b}");
            prop_assert_eq!(a as u64 + 1, u64::from(a) + 1);
            prop_assert_ne!(b, 100);
        }

        #[test]
        fn tuple_patterns_destructure((x, y) in (0u32..4, 0u32..4)) {
            prop_assert!(x < 4 && y < 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(flag in crate::arbitrary::any::<bool>()) {
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    // Declared without `#[test]` so it can be invoked directly below to
    // observe the failure path.
    proptest! {
        fn always_fails(x in 0u32..4) {
            prop_assert!(x > 100);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        always_fails();
    }
}
