//! Strategies for collections, mirroring `proptest::collection`.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose length is drawn uniformly from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from a range.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates ordered sets with a target size drawn uniformly from `size`.
///
/// As in real proptest, the resulting set can be smaller than the drawn size
/// when the element strategy produces duplicates, but never smaller than the
/// lower bound (duplicates are re-drawn a bounded number of times).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(
        size.start < size.end,
        "empty size range for collection::btree_set"
    );
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = rng.gen_range(self.size.clone());
        let mut set = BTreeSet::new();
        // Bounded retries: give up on reaching `target` if the element
        // domain is too small, but keep at least the lower bound when
        // possible.
        let mut attempts = 0usize;
        let max_attempts = 32 * (target + 1);
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        while set.len() < self.size.start && attempts < 2 * max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat = vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_respects_lower_bound_when_domain_allows() {
        let mut rng = StdRng::seed_from_u64(6);
        let strat = btree_set(0u32..100, 1..6);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty());
            assert!(s.len() < 6);
        }
    }
}
