//! Strategies for `Option`, mirroring `proptest::option`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy producing `Some(inner)` most of the time and `None` occasionally.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Wraps `inner` so roughly a quarter of generated values are `None`,
/// matching the spirit of `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_none_and_some() {
        let mut rng = StdRng::seed_from_u64(7);
        let strat = of(0u32..5);
        let mut none = 0;
        let mut some = 0;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                None => none += 1,
                Some(x) => {
                    assert!(x < 5);
                    some += 1;
                }
            }
        }
        assert!(none > 0 && some > 0);
    }
}
