//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The netupd workspace builds without network access to a crates registry,
//! so external dependencies are vendored as minimal re-implementations. This
//! shim keeps the `proptest` 1.x surface the workspace's property tests use:
//!
//! - the [`Strategy`](strategy::Strategy) trait with `prop_map`, `prop_flat_map`,
//!   `prop_filter`, `prop_recursive`, and `boxed`,
//! - strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`collection::vec`], [`collection::btree_set`], [`option::of`], and
//!   [`any::<bool>()`](arbitrary::any),
//! - the [`prop_oneof!`], [`proptest!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros, and
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! What it deliberately drops is *shrinking*: a failing case is reported with
//! its case number and message but not minimized. Inputs are generated from a
//! deterministic per-test seed (a hash of the test's module path and name),
//! so failures reproduce exactly across runs and machines. Swapping in the
//! real `proptest` later is a one-line `Cargo.toml` change.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    //! Runtime support for the [`proptest!`](crate::proptest) macro. Not
    //! public API.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Derives a deterministic seed from a test's fully qualified name
    /// (FNV-1a), so every property test has a stable, distinct input stream.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Allow overriding the number of cases but not the seed: determinism
        // across CI runs is the point.
        hash
    }

    /// Reads `PROPTEST_CASES` from the environment, if set, to scale test
    /// effort up or down without recompiling.
    pub fn cases_override() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (rather than panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{left_val:?}`\n right: `{right_val:?}`",
                        ),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left != right`\n  both: `{left_val:?}`",),
                    ));
                }
            }
        }
    };
}

/// Builds a strategy choosing uniformly among the given strategies (which may
/// have different types but must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($bind:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let cases = $crate::__rt::cases_override().unwrap_or(config.cases);
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let strategies = ($($strat,)+);
            for case in 0..cases {
                let ($($bind,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
