//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of type [`Strategy::Value`].
///
/// Unlike real proptest, a strategy here is just a deterministic generator —
/// there is no shrinking tree. Combinators therefore box eagerly, which keeps
/// the type algebra trivial at a negligible cost for test workloads.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value using `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.generate(rng))))
    }

    /// Keeps only values satisfying `pred`, re-sampling up to a fixed retry
    /// budget.
    ///
    /// Real proptest records `whence` as the rejection reason and gives up
    /// globally after too many rejections; this shim panics with `whence` if
    /// a single draw needs more than 1024 attempts, which converts a
    /// too-strict filter into a loud failure instead of a hang.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        const MAX_FILTER_RETRIES: usize = 1024;
        let whence = whence.into();
        BoxedStrategy(Rc::new(move |rng| {
            for _ in 0..MAX_FILTER_RETRIES {
                let value = self.generate(rng);
                if pred(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter `{whence}`: predicate rejected {MAX_FILTER_RETRIES} \
                 consecutive values; loosen the filter or the source strategy"
            )
        }))
    }

    /// Uses each generated value to pick a follow-up strategy, then samples
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
    where
        Self: Sized + 'static,
        S: Strategy,
        F: Fn(Self::Value) -> S + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.generate(rng)).generate(rng)))
    }

    /// Builds recursive structures: `self` generates leaves, and `recurse`
    /// wraps a strategy for depth-`d` values into one for depth-`d+1` values.
    /// `depth` bounds the nesting; the size-tuning parameters accepted by
    /// real proptest are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among several strategies of the same value type; built by
/// the [`prop_oneof!`](crate::prop_oneof) macro.
#[derive(Debug)]
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given variants. Panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (0u32..5, 10usize..20).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((10..25).contains(&v));
        }
    }

    #[test]
    fn union_picks_every_variant() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursion_bounds_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(inner) => 1 + depth(inner),
            }
        }
        let strat = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(4, 8, 1, |inner| {
                crate::prop_oneof![
                    inner.clone().prop_map(|t| Tree::Node(Box::new(t))),
                    inner.prop_map(|t| t),
                ]
            });
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn filter_resamples_until_predicate_holds() {
        let mut rng = StdRng::seed_from_u64(7);
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "prop_filter `never`")]
    fn filter_panics_when_predicate_never_holds() {
        let mut rng = StdRng::seed_from_u64(8);
        let strat = (0u32..100).prop_filter("never", |_| false);
        strat.generate(&mut rng);
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = (1usize..5).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)));
        for _ in 0..100 {
            let (n, i) = strat.generate(&mut rng);
            assert!(i < n);
        }
    }
}
