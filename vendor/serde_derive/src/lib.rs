//! Offline stand-in for the `serde_derive` crate.
//!
//! The workspace vendors its external dependencies because it builds without
//! network access to a crates registry. Nothing in the workspace currently
//! serializes at runtime — the `#[derive(Serialize, Deserialize)]` attributes
//! on the model types declare *intent* (wire formats for a future distributed
//! deployment) — so these derives simply register the marker-trait impls via
//! the blanket impls in the vendored `serde` crate and expand to nothing.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive. The vendored `serde::Serialize` is a marker
/// trait with a blanket impl, so no generated code is needed.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. The vendored `serde::Deserialize` is a marker
/// trait with a blanket impl, so no generated code is needed.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
